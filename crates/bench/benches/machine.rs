//! Microbenchmarks of the OS substrate's hot paths.
//!
//! The simulator's throughput bounds how large an experiment can run;
//! these benches track the cost (in host time) of the per-access
//! residency check, the fault path, and the hint paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oocp_os::{Machine, MachineParams};
use oocp_rt::{FilterMode, Runtime};

fn small_machine(pages: u64) -> Machine {
    let mut p = MachineParams::small();
    p.resident_limit = 1024;
    Machine::new(p, pages * 4096)
}

fn bench_touch_hit(c: &mut Criterion) {
    let mut m = small_machine(512);
    m.touch(0, 8, false);
    c.bench_function("machine/touch_resident", |b| {
        b.iter(|| black_box(m.touch(black_box(16), 8, false)))
    });
}

fn bench_fault_evict_cycle(c: &mut Criterion) {
    // 2048 pages through 1024 frames: every touch round-robins through
    // fault + eviction machinery.
    c.bench_function("machine/fault_evict_cycle_2048_pages", |b| {
        b.iter(|| {
            let mut m = small_machine(2048);
            for p in 0..2048u64 {
                m.touch(p * 4096, 8, true);
            }
            black_box(m.stats().hard_faults)
        })
    });
}

fn bench_sys_prefetch(c: &mut Criterion) {
    c.bench_function("machine/sys_prefetch_block4", |b| {
        b.iter_with_setup(
            || small_machine(4096),
            |mut m| {
                for p in (0..512u64).step_by(4) {
                    m.sys_prefetch(p, 4);
                }
                black_box(m.stats().prefetch_pages_issued)
            },
        )
    });
}

fn bench_filter_check(c: &mut Criterion) {
    let mut rt = Runtime::new(small_machine(512), FilterMode::Enabled);
    use oocp_ir::PagedVm;
    rt.load_f64(0);
    c.bench_function("rt/filtered_prefetch_resident_page", |b| {
        b.iter(|| rt.prefetch(black_box(0), 1))
    });
}

fn bench_release_reclaim(c: &mut Criterion) {
    c.bench_function("machine/release_then_reclaim_256_pages", |b| {
        b.iter_with_setup(
            || {
                let mut m = small_machine(512);
                for p in 0..256u64 {
                    m.touch(p * 4096, 8, false);
                }
                m
            },
            |mut m| {
                m.sys_release(0, 256);
                m.sys_prefetch(0, 256);
                black_box(m.stats().prefetch_pages_reclaimed)
            },
        )
    });
}

criterion_group!(
    benches,
    bench_touch_hit,
    bench_fault_evict_cycle,
    bench_sys_prefetch,
    bench_filter_check,
    bench_release_reclaim
);
criterion_main!(benches);
