//! Microbenchmarks of the OS substrate's hot paths.
//!
//! The simulator's throughput bounds how large an experiment can run;
//! these benches track the cost (in host time) of the per-access
//! residency check, the fault path, and the hint paths.

use oocp_bench::microbench::{bench, bench_with_setup, black_box};
use oocp_os::{Machine, MachineParams};
use oocp_rt::{FilterMode, Runtime};

fn small_machine(pages: u64) -> Machine {
    let mut p = MachineParams::small();
    p.resident_limit = 1024;
    Machine::new(p, pages * 4096)
}

fn main() {
    let mut m = small_machine(512);
    m.touch(0, 8, false);
    bench("machine/touch_resident", || {
        black_box(m.touch(black_box(16), 8, false));
    });

    // 2048 pages through 1024 frames: every touch round-robins through
    // fault + eviction machinery.
    bench("machine/fault_evict_cycle_2048_pages", || {
        let mut m = small_machine(2048);
        for p in 0..2048u64 {
            m.touch(p * 4096, 8, true);
        }
        black_box(m.stats().hard_faults);
    });

    bench_with_setup(
        "machine/sys_prefetch_block4",
        || small_machine(4096),
        |mut m| {
            for p in (0..512u64).step_by(4) {
                m.sys_prefetch(p, 4);
            }
            black_box(m.stats().prefetch_pages_issued);
        },
    );

    let mut rt = Runtime::new(small_machine(512), FilterMode::Enabled);
    use oocp_ir::PagedVm;
    rt.load_f64(0);
    bench("rt/filtered_prefetch_resident_page", || {
        rt.prefetch(black_box(0), 1);
    });

    bench_with_setup(
        "machine/release_then_reclaim_256_pages",
        || {
            let mut m = small_machine(512);
            for p in 0..256u64 {
                m.touch(p * 4096, 8, false);
            }
            m
        },
        |mut m| {
            m.sys_release(0, 256);
            m.sys_prefetch(0, 256);
            black_box(m.stats().prefetch_pages_reclaimed);
        },
    );
}
