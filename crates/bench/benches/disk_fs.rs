//! Disk model and file-system microbenchmarks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oocp_disk::{Disk, DiskParams, ReqKind, Request};
use oocp_fs::{ExtentAllocator, FileSystem};

fn bench_disk_submit(c: &mut Criterion) {
    c.bench_function("disk/submit_sequential", |b| {
        b.iter_with_setup(
            || Disk::new(DiskParams::default()),
            |mut d| {
                for i in 0..1000u64 {
                    d.submit(
                        0,
                        Request {
                            kind: ReqKind::PrefetchRead,
                            start_block: i,
                            nblocks: 1,
                        },
                    );
                }
                black_box(d.stats().busy_ns)
            },
        )
    });
    c.bench_function("disk/submit_random", |b| {
        b.iter_with_setup(
            || Disk::new(DiskParams::default()),
            |mut d| {
                let mut pos = 1u64;
                for _ in 0..1000u64 {
                    pos = pos.wrapping_mul(6364136223846793005).wrapping_add(1);
                    d.submit(
                        0,
                        Request {
                            kind: ReqKind::DemandRead,
                            start_block: pos % 500_000,
                            nblocks: 1,
                        },
                    );
                }
                black_box(d.stats().busy_ns)
            },
        )
    });
}

fn bench_place_run(c: &mut Criterion) {
    let mut fs = FileSystem::new(7, 1 << 20);
    let f = fs.create_file(100_000).unwrap();
    c.bench_function("fs/place_run_14_pages", |b| {
        b.iter(|| black_box(fs.place_run(f, black_box(4321), 14).unwrap()))
    });
}

fn bench_extent_churn(c: &mut Criterion) {
    c.bench_function("fs/extent_alloc_free_churn", |b| {
        b.iter(|| {
            let mut a = ExtentAllocator::new(1 << 20);
            let mut held = Vec::new();
            for i in 0..200u64 {
                if let Some(e) = a.alloc(64 + i % 128) {
                    held.push(e);
                }
                if i % 3 == 0 {
                    if let Some(e) = held.pop() {
                        a.free(e);
                    }
                }
            }
            for e in held {
                a.free(e);
            }
            black_box(a.free_blocks())
        })
    });
}

criterion_group!(benches, bench_disk_submit, bench_place_run, bench_extent_churn);
criterion_main!(benches);
