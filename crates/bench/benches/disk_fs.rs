//! Disk model and file-system microbenchmarks.

use oocp_bench::microbench::{bench, bench_with_setup, black_box};
use oocp_disk::{Disk, DiskParams, ReqKind, Request};
use oocp_fs::{ExtentAllocator, FileSystem};

fn main() {
    bench_with_setup(
        "disk/submit_sequential",
        || Disk::new(DiskParams::default()),
        |mut d| {
            for i in 0..1000u64 {
                d.submit(0, Request::new(ReqKind::PrefetchRead, i, 1));
            }
            black_box(d.stats().busy_ns);
        },
    );

    bench_with_setup(
        "disk/submit_random",
        || Disk::new(DiskParams::default()),
        |mut d| {
            let mut pos = 1u64;
            for _ in 0..1000u64 {
                pos = pos.wrapping_mul(6364136223846793005).wrapping_add(1);
                d.submit(0, Request::new(ReqKind::DemandRead, pos % 500_000, 1));
            }
            black_box(d.stats().busy_ns);
        },
    );

    let mut fs = FileSystem::new(7, 1 << 20);
    let f = fs.create_file(100_000).unwrap();
    bench("fs/place_run_14_pages", || {
        black_box(fs.place_run(f, black_box(4321), 14).unwrap());
    });

    bench("fs/extent_alloc_free_churn", || {
        let mut a = ExtentAllocator::new(1 << 20);
        let mut held = Vec::new();
        for i in 0..200u64 {
            if let Some(e) = a.alloc(64 + i % 128) {
                held.push(e);
            }
            if i % 3 == 0 {
                if let Some(e) = held.pop() {
                    a.free(e);
                }
            }
        }
        for e in held {
            a.free(e);
        }
        black_box(a.free_blocks());
    });
}
