//! Interpreter throughput: elements per second through the IR executor.

use oocp_bench::microbench::{bench, black_box};
use oocp_ir::{
    lin, run_program, var, ArrayBinding, ArrayRef, CostModel, ElemType, Expr, Index, MemVm,
    Program, Stmt,
};

fn daxpy(n: i64) -> Program {
    let mut p = Program::new("daxpy");
    let x = p.array("x", ElemType::F64, vec![n]);
    let y = p.array("y", ElemType::F64, vec![n]);
    let i = p.fresh_var();
    p.body = vec![Stmt::for_(
        i,
        lin(0),
        lin(n),
        1,
        vec![Stmt::Store {
            dst: ArrayRef::affine(y, vec![var(i)]),
            value: Expr::add(
                Expr::mul(
                    Expr::ConstF(2.0),
                    Expr::LoadF(ArrayRef::affine(x, vec![var(i)])),
                ),
                Expr::LoadF(ArrayRef::affine(y, vec![var(i)])),
            ),
        }],
    )];
    p
}

fn gather(n: i64) -> Program {
    let mut p = Program::new("gather");
    let a = p.array("a", ElemType::F64, vec![n]);
    let b = p.array("b", ElemType::I64, vec![n]);
    let y = p.array("y", ElemType::F64, vec![n]);
    let i = p.fresh_var();
    p.body = vec![Stmt::for_(
        i,
        lin(0),
        lin(n),
        1,
        vec![Stmt::Store {
            dst: ArrayRef::affine(y, vec![var(i)]),
            value: Expr::LoadF(ArrayRef {
                array: a,
                idx: vec![Index::Ind {
                    array: b,
                    idx: vec![var(i)],
                }],
            }),
        }],
    )];
    p
}

fn main() {
    let n = 100_000i64;
    for (name, prog) in [("daxpy", daxpy(n)), ("gather", gather(n))] {
        let (binds, bytes) = ArrayBinding::sequential(&prog, 4096);
        let mut vm = MemVm::new(bytes, 4096);
        bench(&format!("interp/{name} ({n} elems)"), || {
            black_box(run_program(
                &prog,
                &binds,
                &[],
                CostModel::default(),
                &mut vm,
            ));
        });
    }
}
