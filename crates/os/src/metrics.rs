//! Optional observability state carried by the machine.
//!
//! Everything in this module is *passive*: the machine records into it
//! at the same points it already updates [`crate::stats::OsStats`], and
//! nothing here ever advances the simulated clock or changes a paging
//! decision. Enabling metrics must be timing-neutral — a run with
//! metrics on produces byte-identical results and timestamps to the
//! same run with metrics off (the bench crate proptests this).

use oocp_obs::{LatencyHist, LedgerCounts, PrefetchLedger, WhylateSummary};

/// Live observability state (histograms plus the prefetch ledger).
///
/// Created by [`crate::Machine::enable_metrics`]; read through
/// [`crate::Machine::metrics`] or snapshotted as a [`MetricsReport`].
#[derive(Clone, Debug, Default)]
pub struct ObsMetrics {
    /// Demand-fault stall distribution: every hard-fault disk wait,
    /// including the residual waits on in-flight prefetched pages.
    pub fault_wait: LatencyHist,
    /// Waits for disk-queue slots (scheduler backpressure on demand
    /// reads and write-backs).
    pub queue_wait: LatencyHist,
    /// The prefetch-lifecycle ledger (Figure 6/7 partition).
    pub ledger: PrefetchLedger,
}

impl ObsMetrics {
    /// Snapshot the current state as a flat, `Copy` report.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            fault_wait: self.fault_wait,
            queue_wait: self.queue_wait,
            ledger: *self.ledger.counts(),
            ledger_entries: self.ledger.entries(),
            ledger_open: self.ledger.open_entries(),
            lead_time: *self.ledger.lead_time(),
            arrival_to_use: *self.ledger.arrival_to_use(),
            whylate: WhylateSummary::from_ledger(&self.ledger),
        }
    }
}

/// A point-in-time snapshot of [`ObsMetrics`], flattened for export.
///
/// `Copy` so bench results can carry it around freely; the partition
/// invariant `ledger.sum() + ledger_open == ledger_entries` holds for
/// every snapshot, and `ledger_open == 0` after
/// [`crate::Machine::finish`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsReport {
    /// Demand-fault stall distribution.
    pub fault_wait: LatencyHist,
    /// Disk-queue-slot wait distribution.
    pub queue_wait: LatencyHist,
    /// Closed lifecycle outcomes.
    pub ledger: LedgerCounts,
    /// Lifecycle entries ever opened (partition denominator).
    pub ledger_entries: u64,
    /// Entries still open at snapshot time.
    pub ledger_open: u64,
    /// Prefetch issue-to-arrival distribution.
    pub lead_time: LatencyHist,
    /// Arrival-to-first-use distribution for timely hits.
    pub arrival_to_use: LatencyHist,
    /// Whylate causal attribution of the late/dropped/wasted entries;
    /// partitions the corresponding `ledger` outcomes exactly
    /// ([`oocp_obs::WhylateSummary::partitions`]).
    pub whylate: WhylateSummary,
}

impl MetricsReport {
    /// The checked partition invariant.
    pub fn partition_ok(&self) -> bool {
        self.ledger.sum() + self.ledger_open == self.ledger_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_snapshots_ledger_partition() {
        let mut m = ObsMetrics::default();
        m.fault_wait.record(1_000);
        m.ledger.issued(3, 10);
        m.ledger.arrived(3, 500);
        m.ledger.consumed(3, 900);
        m.ledger.issued(4, 20);
        let r = m.report();
        assert_eq!(r.ledger_entries, 2);
        assert_eq!(r.ledger_open, 1);
        assert_eq!(r.ledger.timely_hits, 1);
        assert!(r.partition_ok());
        assert_eq!(r.fault_wait.count(), 1);
        assert_eq!(r.lead_time.sum_ns(), 490);
        assert!(r.whylate.partitions(&r.ledger));
    }
}
