//! The parity content model: what is on the rotating parity blocks.
//!
//! With `--redundancy parity` every stripe row of width `ndisks`
//! carries one XOR parity block (layout in `oocp_fs`). This store
//! holds the *content* of those blocks the way [`DurableStore`] holds
//! the data pages': one image per stripe row, equal at all times to
//! the XOR of the row's durable data pages. It is synchronized from
//! the durable snapshot, updated incrementally whenever a durable data
//! page lands (`new_parity = old_parity ^ old_page ^ new_page`), and
//! fully resynchronized by crash recovery — the same resync a real
//! RAID array performs after an unclean shutdown.
//!
//! The invariant `parity_row == XOR(row's durable pages)` is exactly
//! what degraded reads and the rebuild scrubber rely on; the
//! [`ParityStore::corrupt_row`] debug hook breaks it on purpose so the
//! CI negative gate can prove the rebuild verify sweep has teeth.
//!
//! [`DurableStore`]: crate::store::DurableStore

use crate::store::page_checksum;

/// XOR images of every stripe row's parity block.
pub struct ParityStore {
    page_bytes: u64,
    image: Vec<u8>,
    /// Whether the initial resync against the durable snapshot has
    /// happened (lazily, like the snapshot itself).
    synced: bool,
}

impl ParityStore {
    /// An all-zero store for `rows` stripe rows (XOR of all-zero pages
    /// is zero, matching a fresh machine's zeroed backing file).
    pub fn new(rows: u64, page_bytes: u64) -> Self {
        Self {
            page_bytes,
            image: vec![0u8; (rows * page_bytes) as usize],
            synced: false,
        }
    }

    /// Number of stripe rows covered.
    pub fn rows(&self) -> u64 {
        self.image.len() as u64 / self.page_bytes
    }

    /// Whether the initial resync has happened.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    fn range(&self, row: u64) -> std::ops::Range<usize> {
        let start = (row * self.page_bytes) as usize;
        start..start + self.page_bytes as usize
    }

    /// The parity image of one stripe row.
    pub fn row(&self, row: u64) -> &[u8] {
        &self.image[self.range(row)]
    }

    /// Checksum of one row's parity image (FNV-1a, like data pages).
    pub fn row_checksum(&self, row: u64) -> u64 {
        page_checksum(self.row(row))
    }

    /// Recompute every row from the durable data images: row `r` is
    /// the XOR of pages `r*k .. min((r+1)*k, total_pages)` where
    /// `k = ndisks - 1` data pages per row. Short final rows XOR only
    /// the pages that exist (missing lanes contribute zero).
    pub fn resync(&mut self, k: u64, data: &[u8], total_pages: u64) {
        self.synced = true;
        self.image.fill(0);
        let pb = self.page_bytes as usize;
        for p in 0..total_pages {
            let row = self.range(p / k);
            let page = &data[(p * self.page_bytes) as usize..][..pb];
            for (dst, src) in self.image[row].iter_mut().zip(page) {
                *dst ^= src;
            }
        }
    }

    /// Fold one durable data-page landing into its row's parity:
    /// `parity ^= old_image ^ new_image`. This is the RAID-5
    /// read-modify-write shortcut — no other lane of the row needs to
    /// be touched.
    pub fn update(&mut self, row: u64, old: &[u8], new: &[u8]) {
        let r = self.range(row);
        for ((dst, o), n) in self.image[r].iter_mut().zip(old).zip(new) {
            *dst ^= o ^ n;
        }
    }

    /// Reconstruct one lost data page of `row` by XOR-ing the row's
    /// parity with every *other* durable data page of the row — what a
    /// degraded read or the rebuild scrubber computes from the
    /// survivors. `pages` is the row's data-page range from the fs
    /// layout; `lost` must be inside it.
    pub fn reconstruct(
        &self,
        row: u64,
        pages: std::ops::Range<u64>,
        lost: u64,
        data: &[u8],
    ) -> Vec<u8> {
        debug_assert!(pages.contains(&lost));
        let pb = self.page_bytes as usize;
        let mut out = self.row(row).to_vec();
        for p in pages {
            if p == lost {
                continue;
            }
            let page = &data[(p * self.page_bytes) as usize..][..pb];
            for (dst, src) in out.iter_mut().zip(page) {
                *dst ^= src;
            }
        }
        out
    }

    /// Flip bits in one row's parity image — latent parity corruption,
    /// the debug hook behind the CI negative gate proving the rebuild
    /// verify sweep catches what it claims to.
    pub fn corrupt_row(&mut self, row: u64) {
        let r = self.range(row);
        self.image[r.start] ^= 0xFF;
        self.image[r.start + 1] ^= 0xA5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8, pb: usize) -> Vec<u8> {
        vec![fill; pb]
    }

    #[test]
    fn resync_then_reconstruct_roundtrips() {
        let pb = 512u64;
        // 5 pages over k = 3 lanes -> 2 rows, the second short.
        let mut data = Vec::new();
        for f in [1u8, 2, 4, 8, 16] {
            data.extend(page(f, pb as usize));
        }
        let mut ps = ParityStore::new(2, pb);
        assert!(!ps.is_synced());
        ps.resync(3, &data, 5);
        assert!(ps.is_synced());
        assert_eq!(ps.row(0)[0], 1 ^ 2 ^ 4);
        assert_eq!(ps.row(1)[0], 8 ^ 16);
        // Any single lost page of a row comes back by XOR.
        for lost in 0..5u64 {
            let row = lost / 3;
            let pages = row * 3..5.min((row + 1) * 3);
            let rec = ps.reconstruct(row, pages, lost, &data);
            assert_eq!(
                rec,
                data[(lost * pb) as usize..][..pb as usize].to_vec(),
                "page {lost}"
            );
        }
    }

    #[test]
    fn incremental_update_matches_full_resync() {
        let pb = 512u64;
        let mut data = Vec::new();
        for f in [3u8, 5, 7, 9] {
            data.extend(page(f, pb as usize));
        }
        let mut ps = ParityStore::new(2, pb);
        ps.resync(2, &data, 4);
        // Land a new image on page 1 and fold it in incrementally.
        let newp = page(0x55, pb as usize);
        ps.update(0, &page(5, pb as usize), &newp);
        data[(pb as usize)..2 * pb as usize].copy_from_slice(&newp);
        let mut fresh = ParityStore::new(2, pb);
        fresh.resync(2, &data, 4);
        assert_eq!(ps.row(0), fresh.row(0));
        assert_eq!(ps.row(1), fresh.row(1));
    }

    #[test]
    fn corruption_hook_breaks_reconstruction() {
        let pb = 512u64;
        let data: Vec<u8> = [1u8, 2, 4]
            .iter()
            .flat_map(|&f| page(f, pb as usize))
            .collect();
        let mut ps = ParityStore::new(1, pb);
        ps.resync(3, &data, 3);
        let good = ps.reconstruct(0, 0..3, 0, &data);
        assert_eq!(good[0], 1);
        ps.corrupt_row(0);
        let bad = ps.reconstruct(0, 0..3, 0, &data);
        assert_ne!(good, bad);
        assert_ne!(page_checksum(&good), page_checksum(&bad));
    }
}
