//! The simulated machine: CPU clock, paged VM, prefetch/release hints,
//! disks, and the backing data of the whole virtual address space.

use std::collections::VecDeque;

use oocp_disk::{Completion, DiskArray, FaultPlan, IoError, ReqKind, Request, Ticket};
use oocp_fs::{FileId, FileSystem, WriteJournal};
use oocp_obs::{
    LateCause, MachineBucket, MachineProf, MetricsRegistry, TimeAttribution, TimeSeriesRing,
    ISSUE_DEGRADED, ISSUE_REBUILD_ACTIVE,
};
use oocp_policy::{PolicyActions, PrefetchPolicy, TouchKind};
use oocp_sim::rng::SimRng;
use oocp_sim::stats::TimeWeighted;
use oocp_sim::time::{Ns, TimeBreakdown, TimeCategory, MILLISECOND};

use crate::bitvec::ResidencyBits;
use crate::error::{FlushError, OsError};
use crate::metrics::{MetricsReport, ObsMetrics};
use crate::params::{MachineParams, Redundancy};
use crate::parity::ParityStore;
use crate::stats::OsStats;
use crate::store::{page_checksum, DurableStore, SECTOR_BYTES};
use crate::tenant::{
    PressureLevel, QosClass, TenantId, TenantSpec, TenantStats, ELEVATED_BEST_EFFORT_SLOTS,
};
use crate::trace::{Trace, TraceEvent};

/// A page-aligned region of the virtual address space backing one array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First byte address of the segment.
    pub base: u64,
    /// Length in bytes (rounded up to whole pages at allocation).
    pub bytes: u64,
}

/// One registered tenant: its policy, the page range it owns, its
/// residency view, and its counters.
struct TenantInfo {
    spec: TenantSpec,
    /// First page of the tenant's segment.
    first_page: u64,
    /// Pages in the tenant's segment.
    pages: u64,
    /// Tenant-local clock hand for quota self-eviction.
    hand: u64,
    stats: TenantStats,
}

/// Outcome of a non-blocking demand access ([`Machine::touch_nb`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Touch {
    /// Every page is resident; the access is complete.
    Done {
        /// Pages that hard-faulted during this access.
        faults: u64,
    },
    /// A page's disk read completes at `until`. All fault bookkeeping
    /// (overhead charge, counters, stall samples, state transition) has
    /// already happened; only the wait itself is left to the caller.
    /// The caller must not run this tenant again until the clock
    /// reaches `until`, then simply retry the access (the now-resident
    /// pages take the free fast path).
    Blocked {
        /// Absolute completion time of the blocking read.
        until: Ns,
    },
}

/// Residency state of one virtual page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PageState {
    /// Not in memory; a touch is a hard fault.
    Unmapped,
    /// Prefetch read in progress; `ticket` redeems one completion unit
    /// per page against the disk array. Demand reads never appear here:
    /// a single-threaded application stalls inline on its own fault, so
    /// the page is resident by the time it runs again.
    InFlight { ticket: Ticket },
    /// In memory. `on_free_list` pages are reclaimable but still mapped,
    /// so touching one is only a soft fault.
    Resident {
        dirty: bool,
        referenced: bool,
        on_free_list: bool,
    },
}

/// Why a single admitted prefetch page is being reverted (the
/// degraded-path counterpart of the span error arms).
#[derive(Clone, Copy, Debug)]
enum RevertCause {
    QueueFull,
    IoError,
    Crashed,
}

/// Per-page metadata.
#[derive(Clone, Copy, Debug)]
struct Page {
    state: PageState,
    /// A prefetch named this page and it has not been demand-touched
    /// since; drives the Figure 4(a) fault classification.
    prefetch_tag: bool,
    /// The page has been demand-touched since its last load from disk.
    touched: bool,
    /// The page is currently counted as "in memory" in the shared bit
    /// vector (idempotence guard for the per-bit reference counts).
    bit_noted: bool,
    /// Lifecycle span id of the outstanding prefetch (0 = none).
    /// Assigned when a prefetch read is issued for the page and cleared
    /// when the span terminates (consume, drop, revert, or reclaim);
    /// correlates the issue/arrive/consume trace events.
    span: u64,
}

impl Page {
    const fn new() -> Self {
        Self {
            state: PageState::Unmapped,
            prefetch_tag: false,
            touched: false,
            bit_noted: false,
            span: 0,
        }
    }
}

/// One journaled writeback whose commit protocol is in flight: the
/// journal slot it reserved, a snapshot of the page image being
/// written, and the tickets of the protocol's four writes (descriptor,
/// payload, in-place data, commit mark). A ticket is `None` when the
/// submission itself was refused (crash or exhausted retries) — the
/// write never reached the media, so its effective completion time is
/// "never".
struct WalRecord {
    seq: u64,
    disk: usize,
    vpage: u64,
    payload: Vec<u8>,
    desc: Option<Ticket>,
    pay: Option<Ticket>,
    data: Option<Ticket>,
    commit: Option<Ticket>,
}

/// An unjournaled durable write in flight (durability mode with the
/// journal disabled — the configuration the negative CI gate uses to
/// prove torn writes lose data without WAL protection).
struct PlainWrite {
    vpage: u64,
    payload: Vec<u8>,
    data: Ticket,
}

/// A journal record whose journal blocks were durable when the power
/// died — exactly what a recovery scan of the rings can see.
#[derive(Clone, Debug)]
pub struct DurableRecord {
    /// Record sequence number (per-disk monotone).
    pub seq: u64,
    /// Disk whose ring holds the record.
    pub disk: usize,
    /// The page the record describes.
    pub vpage: u64,
    /// The full page image from the journal's payload block.
    pub payload: Vec<u8>,
    /// Whether the commit mark was durable too (the in-place data
    /// write is then guaranteed durable by the write barrier).
    pub committed: bool,
}

/// What [`Machine::recover`] found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Simulated time of the power loss (0 if the machine never
    /// crashed and recovery was a no-op).
    pub crashed_at: Ns,
    /// Sealed journal records the ring scan found.
    pub scanned_records: u64,
    /// Pages replayed from journal payloads onto their home blocks
    /// (uncommitted records, plus any page whose image failed its
    /// checksum).
    pub pages_replayed: u64,
    /// In-flight updates discarded because their intent record was not
    /// durably sealed — the home block kept its last durable version.
    pub pages_discarded: u64,
    /// Home blocks whose stored checksum failed: torn writes caught
    /// mid-air by the crash.
    pub torn_detected: u64,
    /// Torn/lost pages with no journal payload to repair from. Always
    /// zero with the journal enabled; the negative gate proves it goes
    /// positive without one.
    pub unrecoverable: u64,
    /// The unrecoverable pages themselves.
    pub unrecoverable_pages: Vec<u64>,
    /// Simulated time the recovery pass took (scan + replay + verify).
    pub recovery_ns: Ns,
}

/// The simulated machine.
///
/// Drives a single application (the paper evaluates one application at a
/// time): the interpreter calls [`Machine::tick_user`] for computation,
/// [`Machine::touch`] before each memory access, and the hint entry
/// points ([`Machine::sys_prefetch`], [`Machine::sys_release`],
/// [`Machine::sys_prefetch_release`]) for compiler-inserted operations.
/// Array *data* lives in the machine's backing store so programs execute
/// for real; residency metadata drives the timing model.
///
/// # Examples
///
/// ```
/// use oocp_os::{Machine, MachineParams};
///
/// let mut m = Machine::new(MachineParams::small(), 64 * 4096);
/// m.store_f64(0, 1.5);                 // hard fault + write
/// assert_eq!(m.load_f64(0), 1.5);      // now resident: free
/// assert_eq!(m.stats().hard_faults, 1);
/// m.sys_prefetch(1, 4);                // non-binding hint
/// m.finish();                          // flush dirty pages
/// assert_eq!(m.breakdown().total(), m.now());
/// ```
pub struct Machine {
    params: MachineParams,
    now: Ns,
    breakdown: TimeBreakdown,
    stats: OsStats,
    pages: Vec<Page>,
    /// Lazily-pruned queue of free-list candidates (front = next reclaim).
    free_list: VecDeque<u64>,
    /// Exact number of live (reclaimable) free-list pages; the deque may
    /// additionally hold stale entries awaiting lazy pruning.
    reclaimable: u64,
    /// Pages in `Resident` state (including the free list).
    resident: u64,
    /// Pages in `InFlight` state.
    inflight: u64,
    clock_hand: u64,
    disks: DiskArray,
    fs: FileSystem,
    swap: FileId,
    bits: ResidencyBits,
    data: Vec<u8>,
    next_segment_page: u64,
    free_level: TimeWeighted,
    finished: bool,
    /// Future changes to the resident limit, sorted by time (the
    /// multiprogramming model: other applications taking and returning
    /// memory). Applied lazily as the clock passes each entry.
    pressure: Vec<(Ns, u64)>,
    /// Optional event trace (flight recorder).
    trace: Option<Trace>,
    /// Optional observability layer: latency histograms and the
    /// prefetch-lifecycle ledger. Purely passive — never advances the
    /// clock or changes a paging decision.
    metrics: Option<ObsMetrics>,
    /// Next prefetch-lifecycle span id (always allocated, metrics or
    /// not, so span ids in traces are stable across instrumentation
    /// choices; 0 means "no span").
    next_span: u64,
    /// Bit-vector desync injection (from the fault plan): probability a
    /// residency-bit clear is "lost", and the stream deciding when.
    chaos_bits: Option<(f64, SimRng)>,
    /// The installed fault plan (kept whole so layers above can read
    /// OS-level knobs like bit-vector staleness, which the disk array's
    /// injector does not carry).
    fault_plan: Option<FaultPlan>,
    /// Durable (on-media) page images + checksums. Present only in
    /// durability mode (a crash is scheduled, or this machine came out
    /// of a recovery), so default runs pay nothing.
    durable: Option<DurableStore>,
    /// Per-disk write-ahead journal rings (durability mode with
    /// `params.journal`).
    journal: Option<WriteJournal>,
    /// Journaled writebacks whose commit protocol is in flight.
    wal_pending: Vec<WalRecord>,
    /// Unjournaled durable writes in flight (journal disabled).
    plain_pending: Vec<PlainWrite>,
    /// Journal records durable at crash time, as a recovery scan would
    /// find them.
    wal_durable: Vec<DurableRecord>,
    /// Simulated time of the power loss, once it happened. From then on
    /// the machine is a "zombie": accesses are served from the
    /// in-memory image with no disk and no time, so the interpreter can
    /// run to completion and the harness can recover.
    crashed: Option<Ns>,
    /// Whether crash resolution (freezing the in-flight writes into
    /// durable state) has run.
    crash_resolved: bool,
    /// Whether in-flight writes may tear at the crash.
    torn_writes: bool,
    /// Seeded stream deciding how many sectors of each in-flight write
    /// land (the torn-write model).
    crash_rng: Option<SimRng>,
    /// Updates lost at the crash: writebacks whose intent record was
    /// never sealed (journaled) or whose write never landed (plain).
    crash_discarded: Vec<u64>,
    /// Dirty pages whose final contents never became durable:
    /// abandoned writebacks plus everything cut off by a crash.
    flush_failures: Vec<u64>,
    /// Registered tenants in registration order (each owns one
    /// segment). Empty for the classic single-program machine, which
    /// behaves as one implicit guaranteed tenant with no quotas.
    tenants: Vec<TenantInfo>,
    /// The tenant whose accesses and hints are currently executing
    /// (set by the co-scheduling hub before each slice; 0 otherwise).
    cur_tenant: TenantId,
    /// Per-tenant residency bit vectors (same geometry as the shared
    /// one; each tracks only its owner's pages). Present only when
    /// tenants are registered.
    tenant_bits: Vec<ResidencyBits>,
    /// Installed prefetch policy. `None` under the default
    /// `PolicyKind::CompilerOnly`, which keeps every paging path
    /// bit-identical to a build without the policy subsystem.
    policy: Option<Box<dyn PrefetchPolicy>>,
    /// Set while policy-requested actions are applied, so `do_prefetch`
    /// and `do_release` attribute the pages to the policy and tag the
    /// disk requests as policy-injected.
    policy_issue: bool,
    /// Policy hooks suspended (the runtime pauses reactive policies
    /// while it is degraded to demand-only paging).
    policy_paused: bool,
    /// Degraded-mode generation counter: bumped every time the runtime
    /// enters degraded (demand-only) paging. A prefetch that was in
    /// flight across a bump was paused on, not raced — the whylate
    /// engine attributes its lateness to the mode switch.
    degrade_epoch: u64,
    /// Continuous-telemetry sampler. `None` by default: the only cost
    /// an unattached run pays is one `is_some` branch per clock
    /// advance, so default runs stay bit-identical (the sampler itself
    /// is pull-only and never advances the clock).
    sampler: Option<SamplerState>,
    /// Host-time profiler buckets for the machine's charge paths
    /// (residency / ledger / journal / sampler). `None` by default,
    /// following the trace/sampler precedent: detached runs pay one
    /// `is_some` branch per probed boundary and read no clocks. Plain
    /// data — no `Instant` stored — so the machine stays `Send` for
    /// the multi-tenant hub.
    host_prof: Option<MachineProf>,
    /// Parity content model of the swap file (RAID-5 rotating parity;
    /// present only under [`Redundancy::Parity`], so plain machines
    /// stay bit-identical to pre-redundancy builds).
    parity: Option<ParityStore>,
    /// The dead disk slot and its death time, while the array is
    /// holed: from detection until the rebuild completes (parity mode)
    /// or forever (no redundancy — every later demand access surfaces
    /// [`OsError::DiskLost`]).
    dead_disk: Option<(usize, Ns)>,
    /// Sim time the death was detected (`rebuild_ns` measures from
    /// here to rebuild completion).
    death_detected_at: Ns,
    /// Rebuild watermark: stripe rows already reconstructed onto the
    /// hot spare. Rows below the watermark read normally from the
    /// spare; rows at or above it still go through degraded survivor
    /// fan-out.
    rebuilt_rows: u64,
    /// Sim-time pacing of the scrubber: the watermark may not advance
    /// before this instant (the spare serializes one row write per
    /// average disk access).
    rebuild_next_at: Ns,
}

/// The attached sampler: a metrics registry whose scalar vector is
/// refilled from live machine state and snapshotted into a bounded
/// time-series ring every `interval` of *simulated* time.
struct SamplerState {
    reg: MetricsRegistry,
    ring: TimeSeriesRing,
    /// Next sim time a row is due.
    next_due: Ns,
    /// Disk count captured at attach (fixed for the machine's life).
    ndisks: usize,
    /// Tenants registered when the sampler attached; later
    /// registrations are not sampled (attach after setup to see them).
    ntenants: usize,
}

impl Machine {
    /// Create a machine whose virtual address space holds `space_bytes`.
    ///
    /// The space is rounded up to whole pages and backed by a single
    /// striped file (the mapped-data file of the paper's modified NAS
    /// programs).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see
    /// [`MachineParams::validate`]) or the disks cannot hold the space.
    pub fn new(params: MachineParams, space_bytes: u64) -> Self {
        Self::try_new(params, space_bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Machine::new`], but reports an undersized disk array as a
    /// typed error instead of panicking.
    ///
    /// # Panics
    ///
    /// Still panics on inconsistent parameters — those are programming
    /// errors in experiment setup, not runtime conditions.
    pub fn try_new(params: MachineParams, space_bytes: u64) -> Result<Self, OsError> {
        params.validate();
        let total_pages = space_bytes.div_ceil(params.page_bytes).max(1);
        let mut fs = FileSystem::new(params.ndisks, params.disk.blocks);
        let swap = match params.redundancy {
            Redundancy::None => fs.create_file(total_pages),
            Redundancy::Parity => fs.create_parity_file(total_pages),
        }
        .map_err(|_| OsError::BackingExhausted {
            pages: total_pages,
            capacity_blocks: params.disk.blocks,
        })?;
        // Parity mode keeps the durable content model from day one:
        // parity is defined over *durable* page images, so the store
        // must exist even when no crash is scheduled.
        let parity = (params.redundancy == Redundancy::Parity).then(|| {
            ParityStore::new(
                total_pages.div_ceil(params.ndisks as u64 - 1),
                params.page_bytes,
            )
        });
        let durable = (params.redundancy == Redundancy::Parity)
            .then(|| DurableStore::new(total_pages, params.page_bytes));
        let bits = ResidencyBits::new(total_pages, params.page_bytes);
        let limit = params.resident_limit;
        let mut disks = DiskArray::new(params.ndisks, params.disk);
        disks.set_sched(params.sched);
        Ok(Self {
            params,
            now: 0,
            breakdown: TimeBreakdown::new(),
            stats: OsStats::default(),
            pages: vec![Page::new(); total_pages as usize],
            free_list: VecDeque::new(),
            reclaimable: 0,
            resident: 0,
            inflight: 0,
            clock_hand: 0,
            disks,
            fs,
            swap,
            bits,
            data: vec![0u8; (total_pages * params.page_bytes) as usize],
            next_segment_page: 0,
            free_level: TimeWeighted::start(0, limit as f64),
            finished: false,
            pressure: Vec::new(),
            trace: None,
            metrics: None,
            next_span: 1,
            chaos_bits: None,
            fault_plan: None,
            durable,
            journal: None,
            wal_pending: Vec::new(),
            plain_pending: Vec::new(),
            wal_durable: Vec::new(),
            crashed: None,
            crash_resolved: false,
            torn_writes: false,
            crash_rng: None,
            crash_discarded: Vec::new(),
            flush_failures: Vec::new(),
            tenants: Vec::new(),
            cur_tenant: 0,
            tenant_bits: Vec::new(),
            policy: oocp_policy::build(params.policy),
            policy_issue: false,
            policy_paused: false,
            degrade_epoch: 0,
            sampler: None,
            host_prof: None,
            parity,
            dead_disk: None,
            death_detected_at: 0,
            rebuilt_rows: 0,
            rebuild_next_at: 0,
        })
    }

    /// Install a fault plan: disk-level faults go to the disk array's
    /// injector, bit-vector staleness stays here, and pressure storms
    /// are converted into a pressure schedule. Replaces any previously
    /// installed plan.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.chaos_bits = (plan.bitvec_stale_prob > 0.0).then(|| {
            (
                plan.bitvec_stale_prob,
                SimRng::new(plan.seed ^ 0xB17_5EED_0DD5),
            )
        });
        if !plan.pressure_storms.is_empty() {
            let restore = self.params.resident_limit;
            let mut schedule: Vec<(Ns, u64)> = plan
                .pressure_storms
                .iter()
                .flat_map(|s| [(s.from, s.limit_frames), (s.until, restore)])
                .collect();
            schedule.sort_by_key(|&(at, _)| at);
            self.set_pressure_schedule(schedule);
        }
        self.disks.set_fault_plan(plan.clone());
        if let Some(spec) = plan.crash {
            // Durability mode: from here on the simulator distinguishes
            // the in-memory image from what has durably landed.
            self.torn_writes = spec.torn_writes;
            self.crash_rng = Some(SimRng::new(plan.seed ^ 0x70B5_C4A5_11ED));
            if self.durable.is_none() {
                self.durable = Some(DurableStore::new(
                    self.total_pages(),
                    self.params.page_bytes,
                ));
            }
            if self.params.journal && self.journal.is_none() {
                self.journal = Some(
                    WriteJournal::create(&mut self.fs, self.params.journal_blocks_per_disk)
                        .expect("disks must have room for the writeback journal"),
                );
            }
        }
        let has_effect =
            plan.is_active() || plan.bitvec_stale_prob > 0.0 || !plan.pressure_storms.is_empty();
        self.fault_plan = has_effect.then(|| plan.clone());
    }

    /// Simulated time of the power loss, if one has happened.
    pub fn crashed_at(&self) -> Option<Ns> {
        self.crashed
    }

    /// Whether this machine keeps a durable page store (a crash is
    /// scheduled, or it came out of a recovery).
    pub fn durability_enabled(&self) -> bool {
        self.durable.is_some()
    }

    /// Take the lazy durable-baseline snapshot if durability mode is on
    /// and it has not been taken yet (first timed access).
    fn ensure_durable_snapshot(&mut self) {
        if let Some(d) = &mut self.durable {
            d.ensure_snapshot(&self.data);
            // Parity is defined over the durable images; derive it
            // once, then keep it incrementally consistent at every
            // durable landing ([`Machine::land_durable`]).
            if let Some(ps) = &mut self.parity {
                if !ps.is_synced() {
                    let k = self.fs.ndisks() as u64 - 1;
                    ps.resync(k, d.images(), self.pages.len() as u64);
                }
            }
        }
    }

    /// The installed fault plan, if it injects anything at all.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Enable event tracing with a bounded ring of `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Take the trace collected so far (tracing continues with a fresh
    /// buffer of the same capacity).
    pub fn take_trace(&mut self) -> Option<Trace> {
        let cap = self.trace.as_ref().map(|t| t.capacity())?;
        self.trace.replace(Trace::new(cap))
    }

    #[inline]
    fn trace_event(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(self.now, event);
        }
    }

    /// Enable the observability layer: latency histograms for fault and
    /// backpressure waits plus the prefetch-lifecycle ledger. Idempotent
    /// (re-enabling keeps accumulated state). Timing-neutral: the layer
    /// only records what already happened and never influences paging.
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(ObsMetrics::default());
        }
    }

    /// The live observability state, if enabled.
    pub fn metrics(&self) -> Option<&ObsMetrics> {
        self.metrics.as_ref()
    }

    /// Flat snapshot of the observability state, if enabled.
    pub fn metrics_report(&self) -> Option<MetricsReport> {
        self.metrics.as_ref().map(|m| m.report())
    }

    /// Attach the continuous-telemetry sampler: every `interval_ns` of
    /// simulated time, the full registry of counters and gauges (disk
    /// queue depths and per-class waits, residency and free-frame
    /// levels, journal occupancy, ledger and policy counters, ops
    /// retired) is snapshotted into a ring holding up to `capacity`
    /// rows. Implies [`Machine::enable_metrics`]. Pull-based and
    /// passive: sampling reads state the machine already keeps and
    /// never advances the clock, so a sampled run's simulated timeline
    /// is identical to an unsampled one.
    ///
    /// Per-tenant series cover the tenants registered at attach time;
    /// attach after `register_tenant` calls to see them all.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval or capacity.
    pub fn attach_sampler(&mut self, interval_ns: Ns, capacity: usize) {
        self.enable_metrics();
        let ndisks = self.params.ndisks;
        let ntenants = self.tenants.len();
        let mut reg = MetricsRegistry::new();
        reg.counter("os.user_ops", "interpreter operations retired");
        reg.counter("os.hard_faults", "demand faults that went to disk");
        reg.counter("os.soft_faults", "reclaims from the free list");
        reg.counter("os.prefetch_pages_issued", "prefetch pages put in flight");
        reg.counter("os.prefetch_pages_dropped", "hint pages dropped");
        reg.counter(
            "os.late_prefetch_stall_ns",
            "time stalled on in-flight prefetches",
        );
        reg.gauge("os.resident_pages", "pages resident in memory");
        reg.gauge("os.free_frames", "unallocated plus reclaimable frames");
        reg.gauge("os.inflight_prefetch", "prefetch pages in flight");
        reg.counter("ledger.timely_hits", "prefetches that arrived before use");
        reg.counter(
            "ledger.late_inflight",
            "prefetches consumed while in flight",
        );
        reg.counter("journal.appends", "write-ahead journal intents appended");
        reg.counter("journal.stalls", "writebacks that waited for a ring slot");
        reg.gauge("journal.ring_in_use", "live journal slots across all rings");
        reg.counter(
            "policy.injected_prefetch_pages",
            "prefetch pages injected by the policy",
        );
        reg.counter(
            "policy.injected_release_pages",
            "release pages injected by the policy",
        );
        reg.counter("disk.demand_wait_ns", "demand-read queue wait, all disks");
        reg.counter(
            "disk.prefetch_wait_ns",
            "prefetch-read queue wait, all disks",
        );
        reg.counter("disk.write_wait_ns", "write queue wait, all disks");
        for d in 0..ndisks {
            reg.gauge(
                &format!("disk{d}.queue_len"),
                "undispatched requests queued",
            );
        }
        for t in 0..ntenants {
            reg.gauge(
                &format!("tenant{t}.resident_pages"),
                "pages resident in the tenant's segment",
            );
            reg.gauge(
                &format!("tenant{t}.inflight_prefetch"),
                "tenant prefetch pages in flight",
            );
        }
        reg.gauge(
            "redundancy.rebuild_rows_done",
            "stripe rows reconstructed onto the hot spare",
        );
        reg.counter(
            "redundancy.degraded_reads",
            "demand reads served by survivor reconstruction",
        );
        reg.counter(
            "redundancy.hedged_reads",
            "degraded-mode demand reads that hedged the tail",
        );
        reg.hist("os.fault_wait_ns", "demand-fault stall distribution");
        self.sampler = Some(SamplerState {
            reg,
            ring: TimeSeriesRing::new(interval_ns, capacity),
            next_due: self.now + interval_ns,
            ndisks,
            ntenants,
        });
    }

    /// The sampled telemetry (registry in its end-of-run state plus the
    /// time-series ring), if a sampler is attached. Refreshes the
    /// registry first so exports reflect the final counters.
    pub fn sampler_output(&mut self) -> Option<(&MetricsRegistry, &TimeSeriesRing)> {
        let mut s = self.sampler.take()?;
        self.fill_registry(&mut s);
        self.sampler = Some(s);
        self.sampler.as_ref().map(|s| (&s.reg, &s.ring))
    }

    /// Refill the registry's scalar vector from live machine state, in
    /// exactly the order [`Machine::attach_sampler`] registered it.
    fn fill_registry(&self, s: &mut SamplerState) {
        let st = &self.stats;
        let ledger = self.metrics.as_ref().map(|m| *m.ledger.counts());
        let lc = ledger.unwrap_or_default();
        let journal_in_use: u64 = match &self.journal {
            Some(j) => (0..s.ndisks).map(|d| j.in_use(d)).sum(),
            None => 0,
        };
        let disk = self.disks.total_stats();
        let mut v = vec![
            st.user_ops,
            st.hard_faults,
            st.soft_faults,
            st.prefetch_pages_issued,
            st.prefetch_pages_dropped,
            st.late_prefetch_stall_ns,
            self.resident,
            self.truly_free() + self.free_list_len(),
            self.inflight,
            lc.timely_hits,
            lc.late_inflight,
            st.journal_appends,
            st.journal_stalls,
            journal_in_use,
            st.policy_injected_prefetch_pages,
            st.policy_injected_release_pages,
            disk.demand_wait_ns,
            disk.prefetch_wait_ns,
            disk.write_wait_ns,
        ];
        for d in 0..s.ndisks {
            v.push(self.disks.queue_len(d) as u64);
        }
        for t in 0..s.ntenants {
            let info = &self.tenants[t];
            let resident = self.tenant_bits.get(t).map_or(0, ResidencyBits::set_bits);
            v.push(resident);
            v.push(info.stats.inflight_prefetch);
        }
        v.push(self.rebuilt_rows);
        v.push(st.degraded_reads);
        v.push(st.hedged_reads);
        debug_assert_eq!(v.len(), s.reg.values().len());
        for (i, val) in v.into_iter().enumerate() {
            s.reg.set(i, val);
        }
        if let Some(m) = &self.metrics {
            s.reg.set_hist(0, m.fault_wait);
        }
    }

    /// Emit any sample rows that came due as the clock advanced. Rows
    /// are stamped at their scheduled tick (the state is read at the
    /// first instant the machine observes the tick has passed — the
    /// sim-time analogue of a scrape).
    #[inline]
    fn maybe_sample(&mut self) {
        if self.sampler.is_none() {
            return;
        }
        self.do_sample();
    }

    fn do_sample(&mut self) {
        let t0 = self.prof_start();
        let Some(mut s) = self.sampler.take() else {
            return;
        };
        while s.next_due <= self.now {
            self.fill_registry(&mut s);
            let row = s.reg.snapshot_row();
            let due = s.next_due;
            s.ring.push(due, row);
            s.next_due = due + s.ring.interval();
        }
        self.sampler = Some(s);
        self.prof_end(t0, MachineBucket::Sampler);
    }

    /// Attach the host-time profiler: from now on the machine's charge
    /// paths accrue wall-clock nanoseconds into four flat buckets
    /// (residency / ledger / journal / sampler). Probes read only the
    /// host clock, so simulated time, stats, and data stay
    /// bit-identical to a detached run.
    pub fn attach_host_prof(&mut self) {
        self.host_prof = Some(MachineProf::default());
    }

    /// Detach the host-time profiler and return its buckets, if one
    /// was attached.
    pub fn take_host_prof(&mut self) -> Option<MachineProf> {
        self.host_prof.take()
    }

    #[inline]
    fn prof_start(&self) -> Option<std::time::Instant> {
        if self.host_prof.is_some() {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn prof_end(&mut self, t0: Option<std::time::Instant>, bucket: MachineBucket) {
        if let (Some(t0), Some(p)) = (t0, &mut self.host_prof) {
            p.record(bucket, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Figure-5 time attribution of every nanosecond elapsed so far.
    ///
    /// Works with or without [`Machine::enable_metrics`] — it is built
    /// from the always-on [`OsStats`] accumulators — and partitions
    /// [`Machine::now`] exactly:
    /// `attribution().total() == breakdown().total() == now()`.
    pub fn attribution(&self) -> TimeAttribution {
        let b = self.breakdown;
        let mut backpressure = self.stats.queue_full_wait_ns + self.stats.io_retry_wait_ns;
        let mut fault_wait = self.stats.fault_wait.sum() as Ns;
        let mut late = self.stats.late_prefetch_stall_ns;
        if self.tenants.len() > 1 {
            // Co-scheduled tenants overlap their disk waits with each
            // other's execution, so the per-fault wait sum can exceed
            // the machine's idle time. The attribution partitions the
            // *machine's* elapsed time, so the stall buckets are
            // clamped to the idle they refine; the overlap is visible
            // per tenant in `TenantStats::fault_wait_ns` instead.
            backpressure = backpressure.min(b.idle);
            fault_wait = fault_wait.min(b.idle - backpressure);
            late = late.min(fault_wait);
        }
        TimeAttribution::new(
            b.user,
            b.sys_fault,
            b.sys_prefetch,
            b.idle,
            fault_wait,
            late,
            backpressure,
        )
    }

    /// Record a runtime degradation transition in the trace (the state
    /// machine itself lives in the run-time layer, which has no trace
    /// of its own).
    pub fn note_degraded(&mut self, entered: bool) {
        if entered {
            self.degrade_epoch += 1;
        }
        self.trace_event(if entered {
            TraceEvent::DegradedEnter
        } else {
            TraceEvent::DegradedExit
        });
    }

    /// Machine parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Total pages of virtual address space.
    pub fn total_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Current simulated time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Time ledger so far.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// OS counters so far.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }

    /// Aggregate disk counters.
    pub fn disk_stats(&self) -> oocp_disk::DiskStats {
        self.disks.total_stats()
    }

    /// Average per-disk utilization up to the current time (Figure 5(b)).
    pub fn disk_utilization(&self) -> f64 {
        self.disks.avg_utilization(self.now.max(1))
    }

    /// Time-weighted average number of free frames (Table 3).
    pub fn avg_free_frames(&self) -> f64 {
        self.free_level.mean_until(self.now.max(1))
    }

    /// The shared residency bit vector (read by the run-time layer).
    pub fn bits(&self) -> &ResidencyBits {
        &self.bits
    }

    /// Page number containing byte address `addr`.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.params.page_bytes
    }

    /// Allocate a page-aligned segment of `bytes` from the address space.
    ///
    /// # Panics
    ///
    /// Panics when the address space given to [`Machine::new`] is
    /// exhausted — segment sizing is part of experiment setup.
    pub fn alloc_segment(&mut self, bytes: u64) -> Segment {
        let pages = bytes.div_ceil(self.params.page_bytes).max(1);
        let base_page = self.next_segment_page;
        assert!(
            base_page + pages <= self.total_pages(),
            "address space exhausted: need {} pages past {}, have {}",
            pages,
            base_page,
            self.total_pages()
        );
        self.next_segment_page += pages;
        Segment {
            base: base_page * self.params.page_bytes,
            bytes: pages * self.params.page_bytes,
        }
    }

    // ------------------------------------------------------------------
    // Tenants
    // ------------------------------------------------------------------

    /// Register a tenant owning a fresh segment of `bytes`. Returns the
    /// tenant id (dense, registration order) and its segment.
    ///
    /// Declares the new tenant count to the disk scheduler so its
    /// round-robin shares adjust. A machine with no registered tenants
    /// is the classic single-program machine: one implicit guaranteed
    /// tenant with no quotas and unchanged behaviour.
    ///
    /// # Panics
    ///
    /// Panics if the address space is exhausted (see
    /// [`Machine::alloc_segment`]).
    pub fn register_tenant(&mut self, spec: TenantSpec, bytes: u64) -> (TenantId, Segment) {
        let seg = self.alloc_segment(bytes);
        let id = self.tenants.len() as TenantId;
        self.tenants.push(TenantInfo {
            spec,
            first_page: seg.base / self.params.page_bytes,
            pages: seg.bytes / self.params.page_bytes,
            hand: 0,
            stats: TenantStats::default(),
        });
        self.tenant_bits.push(ResidencyBits::new(
            self.total_pages(),
            self.params.page_bytes,
        ));
        self.disks.set_tenant_count(self.tenants.len());
        (id, seg)
    }

    /// Select the tenant whose accesses and hints execute next (the
    /// co-scheduling hub calls this before each slice).
    pub fn set_tenant(&mut self, t: TenantId) {
        debug_assert!(
            (t as usize) < self.tenants.len().max(1),
            "unknown tenant {t}"
        );
        self.cur_tenant = t;
    }

    /// The currently selected tenant (0 without registrations).
    pub fn cur_tenant(&self) -> TenantId {
        self.cur_tenant
    }

    /// Number of tenants sharing the machine (1 without registrations).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len().max(1)
    }

    /// A tenant's policy (the implicit solo tenant is unlimited).
    pub fn tenant_spec(&self, t: TenantId) -> TenantSpec {
        self.tenants
            .get(t as usize)
            .map_or_else(TenantSpec::unlimited, |i| i.spec)
    }

    /// A tenant's counters (zeros for the implicit solo tenant — its
    /// events live in the shared [`OsStats`]).
    pub fn tenant_stats(&self, t: TenantId) -> TenantStats {
        self.tenants
            .get(t as usize)
            .map(|i| i.stats)
            .unwrap_or_default()
    }

    /// A tenant's private residency bit vector (its own pages only).
    /// Falls back to the shared vector without registrations.
    pub fn tenant_bits_of(&self, t: TenantId) -> &ResidencyBits {
        self.tenant_bits.get(t as usize).unwrap_or(&self.bits)
    }

    /// Frames currently charged to a tenant: active resident pages plus
    /// in-flight prefetches inside its segment (free-list pages are
    /// reclaimable by anyone and charged to no one). For the implicit
    /// solo tenant this is the machine-wide occupancy.
    pub fn tenant_usage(&self, t: TenantId) -> u64 {
        let Some(info) = self.tenants.get(t as usize) else {
            return self.resident + self.inflight;
        };
        let mut used = 0;
        for v in info.first_page..info.first_page + info.pages {
            match self.pages[v as usize].state {
                PageState::Resident {
                    on_free_list: false,
                    ..
                }
                | PageState::InFlight { .. } => used += 1,
                _ => {}
            }
        }
        used
    }

    /// Classify global memory pressure from the free pool against the
    /// pageout watermarks. The arbiter sheds hint load in QoS order as
    /// this rises; the hub additionally pushes low-QoS tenants into
    /// demand-only degraded mode under [`PressureLevel::Brownout`].
    pub fn pressure_level(&self) -> PressureLevel {
        let pool = self.truly_free() + self.free_list_len();
        if pool >= self.params.high_water {
            PressureLevel::Nominal
        } else if pool >= self.params.low_water {
            PressureLevel::Elevated
        } else {
            PressureLevel::Brownout
        }
    }

    /// Advance the clock to `until`, charging the gap as idle — the
    /// hub's "every tenant is blocked on disk" stall. A no-op if the
    /// clock is already past `until`.
    pub fn advance_idle_to(&mut self, until: Ns) {
        self.stall_until(until);
    }

    /// The tenant owning `vpage`, if any segment covers it.
    fn owner_of(&self, vpage: u64) -> Option<TenantId> {
        if self.tenants.is_empty() {
            return None;
        }
        // Segments are allocated in ascending page order.
        let idx = self
            .tenants
            .partition_point(|i| i.first_page <= vpage)
            .checked_sub(1)?;
        let info = &self.tenants[idx];
        (vpage < info.first_page + info.pages).then_some(idx as TenantId)
    }

    /// Adjust the owner's in-flight prefetch gauge when a page enters
    /// or leaves `InFlight` (no-op without registered tenants).
    #[inline]
    fn note_tenant_inflight(&mut self, vpage: u64, delta: i64) {
        if self.tenants.is_empty() {
            return;
        }
        if let Some(t) = self.owner_of(vpage) {
            let g = &mut self.tenants[t as usize].stats.inflight_prefetch;
            *g = (*g as i64 + delta) as u64;
        }
    }

    /// Attribute a demand fault and its stall to the current tenant.
    #[inline]
    fn note_tenant_fault(&mut self, waited: Ns) {
        if let Some(info) = self.tenants.get_mut(self.cur_tenant as usize) {
            info.stats.demand_faults += 1;
            info.stats.fault_wait_ns += waited;
        }
    }

    /// Memory-quota enforcement on the demand path: while the current
    /// tenant is at or over its frame quota, evict one of its *own*
    /// pages, so over-quota tenants recycle their own frames instead of
    /// taking anyone else's — and a quota-starved tenant still makes
    /// progress.
    fn enforce_memory_quota(&mut self) {
        let Some(info) = self.tenants.get(self.cur_tenant as usize) else {
            return;
        };
        let Some(q) = info.spec.memory_frames else {
            return;
        };
        let q = q.max(1);
        while self.tenant_usage(self.cur_tenant) >= q {
            if !self.evict_own_page(self.cur_tenant) {
                break; // everything left is in flight; let it land
            }
        }
    }

    /// Clock-scan the tenant's segment and evict one of its active
    /// resident pages (second chance on the first pass). Returns
    /// `false` if nothing was evictable.
    fn evict_own_page(&mut self, t: TenantId) -> bool {
        let (first, pages) = {
            let i = &self.tenants[t as usize];
            (i.first_page, i.pages)
        };
        let mut scanned = 0;
        while scanned < 2 * pages {
            let hand = self.tenants[t as usize].hand;
            let v = first + hand;
            self.tenants[t as usize].hand = (hand + 1) % pages;
            scanned += 1;
            self.settle(v);
            if let PageState::Resident {
                dirty,
                referenced,
                on_free_list: false,
            } = self.pages[v as usize].state
            {
                if referenced && scanned <= pages {
                    self.pages[v as usize].state = PageState::Resident {
                        dirty,
                        referenced: false,
                        on_free_list: false,
                    };
                } else {
                    // Through the free list so dirty pages get their
                    // writeback, then straight back off it: the frame
                    // goes to the global pool, not to a neighbour's
                    // reclaim.
                    self.queue_on_free_list(v, true);
                    if let Some(p) = self.pop_free_list() {
                        debug_assert_eq!(p, v);
                        self.reclaim(p);
                    }
                    self.tenants[t as usize].stats.quota_evictions += 1;
                    self.trace_event(TraceEvent::Eviction { page: v });
                    return true;
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Time accounting
    // ------------------------------------------------------------------

    /// Charge `ns` of user-mode computation.
    pub fn tick_user(&mut self, ns: Ns) {
        self.now += ns;
        self.breakdown.charge(TimeCategory::User, ns);
        self.stats.user_ops += 1;
        self.maybe_sample();
    }

    fn charge(&mut self, cat: TimeCategory, ns: Ns) {
        self.now += ns;
        self.breakdown.charge(cat, ns);
        self.maybe_sample();
    }

    /// Stall until absolute time `until`, attributing the wait to idle.
    fn stall_until(&mut self, until: Ns) -> Ns {
        if until > self.now {
            let wait = until - self.now;
            self.charge(TimeCategory::Idle, wait);
            wait
        } else {
            0
        }
    }

    fn note_free_level(&mut self) {
        let free = self.truly_free() + self.free_list_len();
        self.free_level.set(self.now, free as f64);
    }

    /// Mark `vpage` as in-memory in the shared bit vector (idempotent).
    fn bit_in(&mut self, vpage: u64) {
        let p = &mut self.pages[vpage as usize];
        if !p.bit_noted {
            p.bit_noted = true;
            self.bits.note_resident(vpage);
            if !self.tenant_bits.is_empty() {
                if let Some(t) = self.owner_of(vpage) {
                    self.tenant_bits[t as usize].note_resident(vpage);
                }
            }
        }
    }

    /// Mark `vpage` as out-of-memory in the shared bit vector
    /// (idempotent).
    ///
    /// Under an installed fault plan the clear is probabilistically
    /// "lost": the page-level bookkeeping updates but the shared bit
    /// vector keeps the bit set (and its reference count elevated) —
    /// the user/kernel desync the runtime's periodic resync exists to
    /// repair. A stale set bit is the dangerous direction: the filter
    /// will suppress prefetches for a page that is actually gone.
    fn bit_out(&mut self, vpage: u64) {
        let p = &mut self.pages[vpage as usize];
        if p.bit_noted {
            p.bit_noted = false;
            if let Some((prob, rng)) = &mut self.chaos_bits {
                if rng.next_f64() < *prob {
                    self.stats.bitvec_stale_injected += 1;
                    return;
                }
            }
            self.bits.note_gone(vpage);
            if !self.tenant_bits.is_empty() {
                if let Some(t) = self.owner_of(vpage) {
                    self.tenant_bits[t as usize].note_gone(vpage);
                }
            }
        }
    }

    /// Rebuild the shared bit vector from page-level residency state,
    /// clearing any bits left stale by injected desync. Returns the
    /// number of stale bits fixed. Cheap enough (one pass over page
    /// metadata) for the runtime to call periodically.
    pub fn resync_bits(&mut self) -> u64 {
        let before = self.bits.set_bits();
        let mut fresh = ResidencyBits::new(self.total_pages(), self.params.page_bytes);
        for (i, p) in self.pages.iter().enumerate() {
            if p.bit_noted {
                fresh.note_resident(i as u64);
            }
        }
        let fixed = before.saturating_sub(fresh.set_bits());
        self.bits = fresh;
        for t in 0..self.tenant_bits.len() {
            let mut tv = ResidencyBits::new(self.total_pages(), self.params.page_bytes);
            let info = &self.tenants[t];
            for v in info.first_page..info.first_page + info.pages {
                if self.pages[v as usize].bit_noted {
                    tv.note_resident(v);
                }
            }
            self.tenant_bits[t] = tv;
        }
        self.stats.bitvec_resyncs += 1;
        self.stats.bitvec_stale_fixed += fixed;
        self.trace_event(TraceEvent::BitvecResync { fixed });
        fixed
    }

    // ------------------------------------------------------------------
    // Frame accounting
    // ------------------------------------------------------------------

    fn truly_free(&self) -> u64 {
        self.params
            .resident_limit
            .saturating_sub(self.resident + self.inflight)
    }

    /// Live entries on the free list (the deque is lazily pruned; this
    /// counter is maintained exactly).
    fn free_list_len(&self) -> u64 {
        self.reclaimable
    }

    /// Materialize an in-flight page whose I/O has already completed,
    /// redeeming one of its ticket's completion units.
    fn settle(&mut self, vpage: u64) {
        if let PageState::InFlight { ticket } = self.pages[vpage as usize].state {
            if let Some(done) = self.disks.poll(ticket, self.now) {
                self.pages[vpage as usize].state = PageState::Resident {
                    dirty: false,
                    referenced: false,
                    on_free_list: false,
                };
                self.pages[vpage as usize].touched = false;
                self.inflight -= 1;
                self.note_tenant_inflight(vpage, -1);
                self.resident += 1;
                // `done` is the read's exact completion time even when
                // this observation is late (completions settle lazily).
                if let Some(mx) = &mut self.metrics {
                    mx.ledger.arrived(vpage, done);
                }
                let span = self.pages[vpage as usize].span;
                self.trace_event(TraceEvent::PrefetchArrive {
                    page: vpage,
                    span,
                    arrival: done,
                });
                if self.policy_ready() {
                    if let Some(pol) = self.policy.as_mut() {
                        pol.on_prefetch_arrived(vpage, done);
                    }
                }
            }
        }
    }

    /// Unmap a free-list page, returning its frame to the free pool.
    fn reclaim(&mut self, vpage: u64) {
        let wasted = self.pages[vpage as usize].prefetch_tag && !self.pages[vpage as usize].touched;
        let page = &mut self.pages[vpage as usize];
        debug_assert!(matches!(
            page.state,
            PageState::Resident {
                on_free_list: true,
                ..
            }
        ));
        if let PageState::Resident { dirty: true, .. } = page.state {
            // Free-list pages are cleaned when queued, but settle order
            // can leave a dirty one; write it back now.
            page.state = PageState::Resident {
                dirty: false,
                referenced: false,
                on_free_list: true,
            };
            self.writeback(vpage);
        }
        self.pages[vpage as usize].state = PageState::Unmapped;
        self.resident -= 1;
        self.bit_out(vpage);
        // If a prefetch loaded this page and it was never touched, its
        // I/O is now provably wasted (no-op for demand-loaded pages).
        if let Some(mx) = &mut self.metrics {
            mx.ledger.evicted(vpage);
        }
        self.pages[vpage as usize].span = 0;
        if wasted && self.policy_ready() {
            if let Some(pol) = self.policy.as_mut() {
                pol.on_prefetch_evicted_unused(vpage);
            }
        }
    }

    /// Pop the next live free-list page, skipping stale entries.
    fn pop_free_list(&mut self) -> Option<u64> {
        while let Some(p) = self.free_list.pop_front() {
            if matches!(
                self.pages[p as usize].state,
                PageState::Resident {
                    on_free_list: true,
                    ..
                }
            ) {
                self.reclaimable -= 1;
                return Some(p);
            }
        }
        None
    }

    /// Submit a request with bounded retry and exponential backoff.
    ///
    /// Used for the two request classes the application *needs* (demand
    /// reads and write-backs); prefetch reads are hints and never come
    /// through here. Demand reads block (the faulting thread stalls
    /// inline); writes are posted fire-and-forget and return 0. A
    /// transient error waits the current backoff (which doubles per
    /// retry); a brownout waits out the reported window. A full queue is
    /// backpressure, not a fault: the OS waits until the scheduler
    /// promises a free slot without consuming any retry budget. Waits
    /// are charged as idle time. The error surfaces once the retry
    /// count or the wait budget is exhausted.
    fn submit_with_retry(&mut self, disk: usize, req: Request, vpage: u64) -> Result<Ns, OsError> {
        let mut attempts: u32 = 1;
        let mut waited: Ns = 0;
        let mut backoff = self.params.io_backoff_base_ns.max(1);
        loop {
            let outcome = if req.kind == ReqKind::Write {
                self.disks.try_post(disk, self.now, req).map(|()| 0)
            } else {
                self.disks.try_submit(disk, self.now, req)
            };
            match outcome {
                Ok(done) => return Ok(done),
                Err(e @ (IoError::EmptyRequest | IoError::OutOfRange { .. })) => {
                    // Logic errors: retrying cannot help.
                    return Err(OsError::Io(e));
                }
                Err(IoError::Crashed { at }) => {
                    // Power loss: latch it. Not retryable, not counted
                    // against the retry budget — the disks are gone.
                    self.crashed = Some(at);
                    return Err(OsError::Crashed { at });
                }
                Err(IoError::DiskDead { disk: d, at }) => {
                    // Whole-disk death: retrying the same disk is
                    // futile. In parity mode the hot spare takes the
                    // slot immediately; a *write* simply lands there
                    // (and rebuilds its block for free), while a read
                    // must be reconstructed — surfaced to the caller
                    // as `DiskLost` and mapped to the degraded path.
                    if self.note_disk_death(d, at) && req.kind == ReqKind::Write {
                        continue;
                    }
                    return Err(OsError::DiskLost { disk: d, at });
                }
                Err(IoError::QueueFull { retry_at, disk: d }) => {
                    // Each wait ends with at least one slot free, so a
                    // blocked demand access always makes progress.
                    let wait = retry_at.saturating_sub(self.now).max(1);
                    self.charge(TimeCategory::Idle, wait);
                    self.stats.queue_full_waits += 1;
                    self.stats.queue_full_wait_ns += wait;
                    if let Some(mx) = &mut self.metrics {
                        mx.queue_wait.record(wait);
                    }
                    self.trace_event(TraceEvent::QueueFullWait {
                        page: vpage,
                        disk: d,
                        wait,
                    });
                }
                Err(e) => {
                    self.stats.io_errors_observed += 1;
                    self.trace_event(TraceEvent::IoError {
                        page: Some(vpage),
                        disk,
                    });
                    let wait = match e {
                        IoError::Brownout { until, .. } => {
                            until.saturating_sub(self.now).max(backoff)
                        }
                        _ => backoff,
                    };
                    if attempts > self.params.io_max_retries
                        || waited.saturating_add(wait) > self.params.io_retry_budget_ns
                    {
                        return Err(OsError::RetriesExhausted {
                            last: e,
                            attempts,
                            waited_ns: waited,
                            page: vpage,
                        });
                    }
                    self.charge(TimeCategory::Idle, wait);
                    self.stats.io_retries += 1;
                    self.stats.io_retry_wait_ns += wait;
                    self.trace_event(TraceEvent::IoRetry { page: vpage, wait });
                    waited += wait;
                    backoff = backoff.saturating_mul(2);
                    attempts += 1;
                }
            }
        }
    }

    /// Like [`Machine::submit_with_retry`] but returns a tracked
    /// [`Ticket`] instead of blocking — the submission shape the
    /// durable writeback protocol needs, since it must learn each
    /// write's exact completion time at crash resolution. Same retry,
    /// backoff, and backpressure behaviour; a power loss latches the
    /// crash and surfaces immediately (not retryable).
    fn submit_tracked_with_retry(
        &mut self,
        disk: usize,
        req: Request,
        vpage: u64,
    ) -> Result<Ticket, OsError> {
        let mut attempts: u32 = 1;
        let mut waited: Ns = 0;
        let mut backoff = self.params.io_backoff_base_ns.max(1);
        loop {
            match self.disks.try_track(disk, self.now, req) {
                Ok(ticket) => return Ok(ticket),
                Err(e @ (IoError::EmptyRequest | IoError::OutOfRange { .. })) => {
                    return Err(OsError::Io(e));
                }
                Err(IoError::Crashed { at }) => {
                    self.crashed = Some(at);
                    return Err(OsError::Crashed { at });
                }
                Err(IoError::DiskDead { disk: d, at }) => {
                    // Same contract as the blocking helper: writes in
                    // parity mode retry onto the freshly installed
                    // spare; everything else is a loss.
                    if self.note_disk_death(d, at) && req.kind == ReqKind::Write {
                        continue;
                    }
                    return Err(OsError::DiskLost { disk: d, at });
                }
                Err(IoError::QueueFull { retry_at, disk: d }) => {
                    let wait = retry_at.saturating_sub(self.now).max(1);
                    self.charge(TimeCategory::Idle, wait);
                    self.stats.queue_full_waits += 1;
                    self.stats.queue_full_wait_ns += wait;
                    if let Some(mx) = &mut self.metrics {
                        mx.queue_wait.record(wait);
                    }
                    self.trace_event(TraceEvent::QueueFullWait {
                        page: vpage,
                        disk: d,
                        wait,
                    });
                }
                Err(e) => {
                    self.stats.io_errors_observed += 1;
                    self.trace_event(TraceEvent::IoError {
                        page: Some(vpage),
                        disk,
                    });
                    let wait = match e {
                        IoError::Brownout { until, .. } => {
                            until.saturating_sub(self.now).max(backoff)
                        }
                        _ => backoff,
                    };
                    if attempts > self.params.io_max_retries
                        || waited.saturating_add(wait) > self.params.io_retry_budget_ns
                    {
                        return Err(OsError::RetriesExhausted {
                            last: e,
                            attempts,
                            waited_ns: waited,
                            page: vpage,
                        });
                    }
                    self.charge(TimeCategory::Idle, wait);
                    self.stats.io_retries += 1;
                    self.stats.io_retry_wait_ns += wait;
                    self.trace_event(TraceEvent::IoRetry { page: vpage, wait });
                    waited += wait;
                    backoff = backoff.saturating_mul(2);
                    attempts += 1;
                }
            }
        }
    }

    /// Record a whole-disk death the first time any submission path
    /// observes it. Returns whether the machine can tolerate the loss:
    /// `true` only in parity mode for a first (or already-known) death,
    /// in which case the hot spare is installed into the dead slot at
    /// once and the rebuild watermark starts at zero — the injector
    /// stops failing the slot, and from here on the *machine* gates
    /// reads by `rebuilt_rows`. A second concurrent death (or any death
    /// without redundancy) is data loss.
    fn note_disk_death(&mut self, disk: usize, at: Ns) -> bool {
        match self.dead_disk {
            Some((d, _)) if d == disk => self.parity.is_some(),
            Some(_) => false,
            None => {
                self.dead_disk = Some((disk, at));
                self.death_detected_at = self.now;
                if self.parity.is_some() {
                    self.disks.install_spare(disk);
                    self.rebuilt_rows = 0;
                    self.rebuild_next_at = self.now;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether the array is currently holed: a disk died and (in parity
    /// mode) the rebuild has not yet completed.
    pub fn degraded_active(&self) -> bool {
        self.dead_disk.is_some()
    }

    /// The dead disk slot and its death time, while the array is holed.
    pub fn dead_disk(&self) -> Option<(usize, Ns)> {
        self.dead_disk
    }

    /// Rebuild progress as `(rows_rebuilt, total_rows)`. Total is zero
    /// for machines without a parity layout.
    pub fn rebuild_progress(&self) -> (u64, u64) {
        (self.rebuilt_rows, self.fs.rows(self.swap).unwrap_or(0))
    }

    /// Whether a read of `vpage` (whose home block is on `disk`) must
    /// go through degraded survivor reconstruction: the home disk is
    /// the dead slot, parity exists, and the page's stripe row has not
    /// yet been rebuilt onto the spare.
    fn read_goes_degraded(&self, disk: usize, vpage: u64) -> bool {
        let Some((dead, _)) = self.dead_disk else {
            return false;
        };
        if disk != dead || self.parity.is_none() {
            return false;
        }
        self.fs
            .row_of(self.swap, vpage)
            .is_ok_and(|r| r >= self.rebuilt_rows)
    }

    /// Snapshot the current in-memory image of `vpage` (the bytes a
    /// writeback would persist).
    fn page_image(&self, vpage: u64) -> Vec<u8> {
        let start = (vpage * self.params.page_bytes) as usize;
        self.data[start..start + self.params.page_bytes as usize].to_vec()
    }

    /// Schedule a write-back of `vpage`'s current contents.
    ///
    /// Failures are retried with backoff; if retries exhaust, the
    /// write-back is abandoned, counted, and the page recorded for
    /// [`Machine::try_finish`]'s [`FlushError`] — the simulator's
    /// backing store is authoritative, so abandonment affects the
    /// durability ledger, never the computed results. In durability
    /// mode the write goes through the write-ahead journal (or, with
    /// the journal disabled, as a bare tracked write), so crash
    /// resolution can decide exactly what landed.
    fn writeback(&mut self, vpage: u64) {
        if self.crashed.is_some() {
            // Power is out: the write can never happen.
            self.stats.writebacks_abandoned += 1;
            self.flush_failures.push(vpage);
            return;
        }
        let (disk, block) = self
            .fs
            .place(self.swap, vpage)
            .expect("resident page must have backing blocks");
        if self.parity.is_some() {
            // RAID-5 read-modify-write: every data writeback carries a
            // parity-block write on the row's parity disk. The content
            // change lands when the data write settles
            // ([`Machine::land_durable`]); this models the traffic.
            self.post_parity_write(vpage);
        }
        if self.durable.is_some() {
            self.ensure_durable_snapshot();
            let payload = self.page_image(vpage);
            if self.journal.is_some() {
                self.writeback_journaled(vpage, disk, block, payload);
            } else {
                self.writeback_plain(vpage, disk, block, payload);
            }
            return;
        }
        let owner = self.owner_of(vpage).unwrap_or(0);
        match self.submit_with_retry(
            disk,
            Request::new(ReqKind::Write, block, 1).with_tenant(owner),
            vpage,
        ) {
            Ok(_) => {
                self.stats.writebacks += 1;
                self.trace_event(TraceEvent::Writeback { page: vpage });
            }
            Err(_) => {
                self.stats.writebacks_abandoned += 1;
                self.flush_failures.push(vpage);
            }
        }
    }

    /// The WAL commit protocol for one writeback. All four writes are
    /// issued up front on the page's disk; ordering is enforced
    /// *logically* by effective completion times (each stage's
    /// effective time is the max of its own completion and the prior
    /// stage's), which models a per-disk write barrier without
    /// serializing the physical queue:
    ///
    /// 1. descriptor + payload into the journal slot  (seal),
    /// 2. the in-place data write to the home block   (apply),
    /// 3. the descriptor rewritten with its commit mark (commit).
    fn writeback_journaled(&mut self, vpage: u64, disk: usize, block: u64, payload: Vec<u8>) {
        let t0 = self.prof_start();
        self.writeback_journaled_inner(vpage, disk, block, payload);
        self.prof_end(t0, MachineBucket::Journal);
    }

    fn writeback_journaled_inner(&mut self, vpage: u64, disk: usize, block: u64, payload: Vec<u8>) {
        let slot = loop {
            let j = self.journal.as_mut().expect("journaled writeback");
            match j.reserve(disk) {
                Some(slot) => break slot,
                None => {
                    if !self.force_retire_oldest(disk) {
                        self.stats.writebacks_abandoned += 1;
                        self.flush_failures.push(vpage);
                        return;
                    }
                }
            }
        };
        self.stats.journal_appends += 1;
        let issue = |m: &mut Self, b: u64| {
            m.submit_tracked_with_retry(disk, Request::new(ReqKind::Write, b, 1), vpage)
                .ok()
        };
        let desc = issue(self, slot.desc_block);
        let pay = issue(self, slot.payload_block);
        let data = issue(self, block);
        let commit = issue(self, slot.desc_block);
        let complete = desc.is_some() && pay.is_some() && data.is_some() && commit.is_some();
        self.wal_pending.push(WalRecord {
            seq: slot.seq,
            disk,
            vpage,
            payload,
            desc,
            pay,
            data,
            commit,
        });
        if complete {
            self.stats.writebacks += 1;
            self.trace_event(TraceEvent::Writeback { page: vpage });
        } else if self.crashed.is_none() {
            // Retries exhausted mid-protocol with the power still on:
            // the update may never land, so report it as unflushed.
            self.stats.writebacks_abandoned += 1;
            self.flush_failures.push(vpage);
        }
    }

    /// Durable writeback without WAL protection: one bare tracked
    /// write. A crash catching it mid-air can tear the home block with
    /// no payload to repair from — the unrecoverable case.
    fn writeback_plain(&mut self, vpage: u64, disk: usize, block: u64, payload: Vec<u8>) {
        match self.submit_tracked_with_retry(disk, Request::new(ReqKind::Write, block, 1), vpage) {
            Ok(data) => {
                self.stats.writebacks += 1;
                self.trace_event(TraceEvent::Writeback { page: vpage });
                self.plain_pending.push(PlainWrite {
                    vpage,
                    payload,
                    data,
                });
            }
            Err(OsError::Crashed { .. }) => {
                // Never accepted: the home block keeps the old image;
                // the update is simply lost.
                self.crash_discarded.push(vpage);
                self.flush_failures.push(vpage);
            }
            Err(_) => {
                self.stats.writebacks_abandoned += 1;
                self.flush_failures.push(vpage);
            }
        }
    }

    /// Post the parity-block write that accompanies a data writeback
    /// in parity mode. Skipped when the row's parity block sits on the
    /// un-rebuilt part of the dead disk (there is nowhere to write it
    /// until the rebuild reaches that row). Queue-full refusals are
    /// dropped — the traffic is timing-only; the content model is
    /// updated at the durable landing regardless.
    fn post_parity_write(&mut self, vpage: u64) {
        let Ok(row) = self.fs.row_of(self.swap, vpage) else {
            return;
        };
        let Ok((pd, pb)) = self.fs.parity_place(self.swap, row) else {
            return;
        };
        if let Some((dead, _)) = self.dead_disk {
            if pd == dead && row >= self.rebuilt_rows {
                return;
            }
        }
        let owner = self.owner_of(vpage).unwrap_or(0);
        match self.disks.try_post(
            pd,
            self.now,
            Request::new(ReqKind::Write, pb, 1).with_tenant(owner),
        ) {
            Ok(()) => self.stats.parity_writes += 1,
            Err(IoError::Crashed { at }) => self.crashed = Some(at),
            Err(IoError::DiskDead { disk, at }) => {
                self.note_disk_death(disk, at);
            }
            Err(_) => {}
        }
    }

    /// Land a page image in the durable store, first folding the
    /// change into its stripe row's parity content (the XOR identity
    /// `parity ^= old ^ new` needs the *old* durable image, so the
    /// order matters).
    fn land_durable(&mut self, vpage: u64, payload: &[u8]) {
        if self.parity.is_some() {
            if let Ok(row) = self.fs.row_of(self.swap, vpage) {
                if let (Some(ps), Some(d)) = (&mut self.parity, &self.durable) {
                    if ps.is_synced() {
                        ps.update(row, d.page(vpage), payload);
                    }
                }
            }
        }
        if let Some(d) = &mut self.durable {
            d.write_page(vpage, payload);
        }
    }

    /// Synchronously make the oldest journal record on `disk` durable
    /// and reclaim its slot (the ring is full). Returns `false` if
    /// there is nothing to retire.
    fn force_retire_oldest(&mut self, disk: usize) -> bool {
        let Some(seq) = self.journal.as_ref().and_then(|j| j.oldest_live(disk)) else {
            return false;
        };
        let Some(idx) = self
            .wal_pending
            .iter()
            .position(|r| r.disk == disk && r.seq == seq)
        else {
            // Already resolved elsewhere; just reclaim the slot.
            self.journal.as_mut().expect("journal").retire(disk, seq);
            return true;
        };
        let rec = self.wal_pending.remove(idx);
        let done = [rec.desc, rec.pay, rec.data, rec.commit]
            .into_iter()
            .flatten()
            .map(|t| self.disks.wait_for(t))
            .max()
            .unwrap_or(self.now);
        self.stall_until(done);
        self.stats.journal_stalls += 1;
        if rec.data.is_some() {
            self.land_durable(rec.vpage, &rec.payload);
        }
        self.journal.as_mut().expect("journal").retire(disk, seq);
        self.wal_durable.push(DurableRecord {
            seq: rec.seq,
            disk: rec.disk,
            vpage: rec.vpage,
            payload: rec.payload,
            committed: true,
        });
        true
    }

    /// Move a resident page to the free list (daemon eviction path).
    fn queue_on_free_list(&mut self, vpage: u64, front: bool) {
        let page = &mut self.pages[vpage as usize];
        let dirty = matches!(page.state, PageState::Resident { dirty: true, .. });
        page.state = PageState::Resident {
            dirty: false,
            referenced: false,
            on_free_list: true,
        };
        if dirty {
            self.writeback(vpage);
        }
        if front {
            self.free_list.push_front(vpage);
        } else {
            self.free_list.push_back(vpage);
        }
        self.reclaimable += 1;
    }

    /// Pageout daemon: clock-scan resident pages onto the free list until
    /// the pool reaches the high watermark.
    ///
    /// The daemon's CPU time is not charged to the application (it ran on
    /// spare cycles in Hurricane); its disk traffic is fully modeled.
    fn run_daemon(&mut self) {
        let pool = self.truly_free() + self.free_list_len();
        if pool >= self.params.low_water {
            return;
        }
        let total = self.total_pages();
        let mut scanned = 0u64;
        let mut pool = pool;
        while pool < self.params.high_water && scanned < 2 * total {
            let v = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % total;
            scanned += 1;
            self.settle(v);
            if let PageState::Resident {
                dirty,
                referenced,
                on_free_list: false,
            } = self.pages[v as usize].state
            {
                if referenced {
                    self.pages[v as usize].state = PageState::Resident {
                        dirty,
                        referenced: false,
                        on_free_list: false,
                    };
                } else {
                    self.queue_on_free_list(v, false);
                    self.stats.daemon_evictions += 1;
                    self.trace_event(TraceEvent::Eviction { page: v });
                    pool += 1;
                }
            }
        }
    }

    /// Allocate a frame for a demand fault.
    ///
    /// Fails (with full occupancy context) only when every frame is
    /// pinned by in-flight I/O and nothing is reclaimable even after
    /// forcing the pageout daemon.
    fn alloc_frame_demand(&mut self) -> Result<(), OsError> {
        if self.truly_free() > 0 {
            return Ok(());
        }
        if let Some(p) = self.pop_free_list() {
            self.reclaim(p);
            return Ok(());
        }
        // Nothing free and nothing reclaimable: force the daemon to build
        // a pool, then reclaim.
        self.run_daemon();
        if let Some(p) = self.pop_free_list() {
            self.reclaim(p);
            return Ok(());
        }
        Err(OsError::OutOfFrames {
            resident: self.resident,
            inflight: self.inflight,
            limit: self.params.resident_limit,
        })
    }

    /// Allocate a frame for a prefetch; `false` means the hint is dropped
    /// (the paper: "the OS simply drops prefetches when all memory is in
    /// use"). Prefetches never force evictions and always leave
    /// `demand_reserve` frames untouched.
    fn alloc_frame_prefetch(&mut self) -> bool {
        if self.truly_free() > self.params.demand_reserve {
            return true;
        }
        if let Some(p) = self.pop_free_list() {
            self.reclaim(p);
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Demand accesses
    // ------------------------------------------------------------------

    /// Touch the bytes `[addr, addr + len)` as a demand access,
    /// faulting as needed. `write` marks the pages dirty.
    ///
    /// Returns the number of pages that hard-faulted (test hook).
    ///
    /// # Panics
    ///
    /// Panics if a demand read fails even after the OS's bounded
    /// retries (possible only under an installed fault plan whose
    /// error rate or brownout length defeats the retry budget). Fault-
    /// aware callers use [`Machine::try_touch`].
    pub fn touch(&mut self, addr: u64, len: u64, write: bool) -> u64 {
        self.try_touch(addr, len, write)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Machine::touch`], but surfaces exhausted-retry demand-read
    /// failures as typed errors. Pages before the failing one remain
    /// touched; the failing page is left unmapped, so the access can be
    /// retried later.
    pub fn try_touch(&mut self, addr: u64, len: u64, write: bool) -> Result<u64, OsError> {
        let t0 = self.prof_start();
        let r = self.try_touch_inner(addr, len, write);
        self.prof_end(t0, MachineBucket::Residency);
        r
    }

    fn try_touch_inner(&mut self, addr: u64, len: u64, write: bool) -> Result<u64, OsError> {
        debug_assert!(!self.finished, "touch after finish()");
        if self.durable.is_some() {
            self.ensure_durable_snapshot();
        }
        let first = self.page_of(addr);
        let last = self.page_of(addr + len.max(1) - 1);
        if self.crashed.is_some() {
            // Zombie mode: the power is out, so there is no disk and no
            // time — serve from the in-memory image so the interpreter
            // can run to completion and the harness can recover.
            for vpage in first..=last {
                self.touch_page_crashed(vpage, write);
            }
            return Ok(0);
        }
        if !self.pressure.is_empty() {
            self.apply_pressure();
        }
        if self.dead_disk.is_some() {
            self.pump_rebuild();
        }
        let mut faults = 0;
        for vpage in first..=last {
            if self.touch_page(vpage, write)? {
                faults += 1;
            }
        }
        Ok(faults)
    }

    /// Non-blocking variant of [`Machine::try_touch`] for co-scheduling
    /// hubs: all fault bookkeeping (kernel overhead, counters, stall
    /// samples, residency transitions) happens exactly as in the
    /// blocking path, but instead of charging the disk wait as idle the
    /// call returns [`Touch::Blocked`] with the read's completion time.
    /// The hub runs other tenants during the gap (or
    /// [`Machine::advance_idle_to`] if everyone is blocked), then
    /// simply retries the access: completed pages take the free
    /// resident fast path, so no event is double-counted.
    ///
    /// Queue-full and retry backoff waits inside the submission path
    /// still block globally (they are idle waits of the shared kernel,
    /// not of one tenant) — rare by construction, since demand reads
    /// bypass the per-tenant queue shares.
    pub fn touch_nb(&mut self, addr: u64, len: u64, write: bool) -> Result<Touch, OsError> {
        let t0 = self.prof_start();
        let r = self.touch_nb_inner(addr, len, write);
        self.prof_end(t0, MachineBucket::Residency);
        r
    }

    fn touch_nb_inner(&mut self, addr: u64, len: u64, write: bool) -> Result<Touch, OsError> {
        debug_assert!(!self.finished, "touch after finish()");
        if self.durable.is_some() {
            self.ensure_durable_snapshot();
        }
        let first = self.page_of(addr);
        let last = self.page_of(addr + len.max(1) - 1);
        if self.crashed.is_some() {
            for vpage in first..=last {
                self.touch_page_crashed(vpage, write);
            }
            return Ok(Touch::Done { faults: 0 });
        }
        if !self.pressure.is_empty() {
            self.apply_pressure();
        }
        if self.dead_disk.is_some() {
            self.pump_rebuild();
        }
        let mut faults = 0;
        for vpage in first..=last {
            match self.touch_page_nb(vpage, write)? {
                None => {}
                Some(until) if until > self.now => {
                    // Counted faults on earlier pages stay counted in
                    // the stats; the retry re-reports only the rest.
                    return Ok(Touch::Blocked { until });
                }
                Some(_) => faults += 1,
            }
        }
        Ok(Touch::Done { faults })
    }

    /// Assign the single dominant cause of a late prefetch: the page
    /// was touched at `touch` (before any stall) while its read, whose
    /// completion detail is `c`, was still in flight. The decision tree
    /// (documented on [`LateCause`]) checks environmental interference
    /// first, then asks whether even an uncontended disk could have made
    /// the deadline, then splits the remainder by where the flight time
    /// actually went.
    fn classify_late(&self, vpage: u64, touch: Ns, c: Completion) -> LateCause {
        let Some((issued_at, js0, de0)) = self
            .metrics
            .as_ref()
            .and_then(|m| m.ledger.issue_ctx(vpage))
        else {
            return LateCause::IssueLag;
        };
        let flags = self
            .metrics
            .as_ref()
            .and_then(|m| m.ledger.issue_flags(vpage))
            .unwrap_or(0);
        if flags & ISSUE_DEGRADED != 0 {
            // The read itself was a survivor fan-out for a page on the
            // dead disk — reconstruction latency, not scheduling.
            return LateCause::DegradedRead;
        }
        if self.degrade_epoch != de0 {
            return LateCause::DegradedPause;
        }
        if self.stats.journal_stalls > js0 && c.wait >= c.service {
            return LateCause::JournalStall;
        }
        if flags & ISSUE_REBUILD_ACTIVE != 0 && c.wait >= c.service {
            // Queue wait dominated while the rebuild scrubber was
            // pushing reconstruction I/O through the survivors.
            return LateCause::RebuildContention;
        }
        if touch.saturating_sub(issued_at) < c.service {
            return LateCause::IssueLag;
        }
        if c.wait >= c.service {
            return LateCause::QueueWait;
        }
        LateCause::ServiceTime
    }

    /// Fan one read per *other* block of `vpage`'s stripe row — its
    /// data siblings plus the parity block — on the real queues, and
    /// return the slowest completion: the cost of reconstructing
    /// `vpage` by XOR. Used both for degraded reads of the dead slot
    /// and for speculative reconstruction when hedging.
    fn row_fanout_read(&mut self, vpage: u64, row: u64) -> Result<Ns, OsError> {
        let pages = self.fs.row_pages(self.swap, row).map_err(OsError::Fs)?;
        let mut done = self.now;
        for p in pages {
            if p == vpage {
                continue;
            }
            let (d, b) = self.fs.place(self.swap, p).map_err(OsError::Fs)?;
            done = done.max(self.submit_with_retry(
                d,
                Request::new(ReqKind::DemandRead, b, 1).with_tenant(self.cur_tenant),
                vpage,
            )?);
        }
        let (pd, pb) = self.fs.parity_place(self.swap, row).map_err(OsError::Fs)?;
        done = done.max(self.submit_with_retry(
            pd,
            Request::new(ReqKind::DemandRead, pb, 1).with_tenant(self.cur_tenant),
            vpage,
        )?);
        Ok(done)
    }

    /// Serve a demand read whose home block is on the un-rebuilt part
    /// of the dead disk: reconstruct it from the row's survivors.
    fn degraded_demand_read(&mut self, vpage: u64) -> Result<Ns, OsError> {
        let row = self.fs.row_of(self.swap, vpage).map_err(OsError::Fs)?;
        let done = self.row_fanout_read(vpage, row)?;
        self.stats.degraded_reads += 1;
        Ok(done)
    }

    /// Deadline after which a degraded-mode demand read hedges: the
    /// p99 of observed fault waits (the tail the hedge is cutting),
    /// falling back to a generous constant when metrics are detached
    /// or still empty.
    fn hedge_deadline(&self) -> Ns {
        let p99 = self.metrics.as_ref().map_or(0, |m| m.fault_wait.p99());
        if p99 > 0 {
            p99
        } else {
            25 * MILLISECOND
        }
    }

    /// Hedged tail read: in degraded mode the survivors carry fan-out
    /// and rebuild traffic, so a read predicted to blow the p99
    /// deadline races a speculative alternative and takes the earlier
    /// completion. If the page's stripe row is already whole again
    /// (rebuilt onto the spare) the alternative is a full XOR
    /// reconstruction from the row's other blocks; otherwise the row
    /// is still holed — reconstruction is impossible — and the hedge
    /// is a duplicate read of the same block.
    fn maybe_hedge(
        &mut self,
        vpage: u64,
        disk: usize,
        block: u64,
        done: Ns,
    ) -> Result<Ns, OsError> {
        let deadline = self.now.saturating_add(self.hedge_deadline());
        if done <= deadline {
            return Ok(done);
        }
        self.stats.hedged_reads += 1;
        let row = self.fs.row_of(self.swap, vpage).map_err(OsError::Fs)?;
        let alt = if row < self.rebuilt_rows {
            self.row_fanout_read(vpage, row)?
        } else {
            self.submit_with_retry(
                disk,
                Request::new(ReqKind::DemandRead, block, 1).with_tenant(self.cur_tenant),
                vpage,
            )?
        };
        if alt < done {
            self.stats.hedged_wins += 1;
            Ok(alt)
        } else {
            Ok(done)
        }
    }

    /// Submit the demand read for `vpage` (home block `(disk, block)`),
    /// going through survivor reconstruction when the home is on the
    /// un-rebuilt part of a dead disk and hedging tail reads while the
    /// array is degraded. Returns the completion time and whether the
    /// read was served degraded.
    fn demand_read_submit(
        &mut self,
        vpage: u64,
        disk: usize,
        block: u64,
    ) -> Result<(Ns, bool), OsError> {
        if self.read_goes_degraded(disk, vpage) {
            return self.degraded_demand_read(vpage).map(|d| (d, true));
        }
        match self.submit_with_retry(
            disk,
            Request::new(ReqKind::DemandRead, block, 1).with_tenant(self.cur_tenant),
            vpage,
        ) {
            Ok(done) => {
                let done = if self.dead_disk.is_some() && self.parity.is_some() {
                    self.maybe_hedge(vpage, disk, block, done)?
                } else {
                    done
                };
                Ok((done, false))
            }
            Err(OsError::DiskLost { .. })
                if self.parity.is_some() && self.dead_disk.is_some_and(|(d, _)| d == disk) =>
            {
                // First contact with the freshly dead disk: the death
                // was latched inside the retry loop; reconstruct.
                self.degraded_demand_read(vpage).map(|d| (d, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Touch one page without stalling. `Ok(None)` means no hard fault;
    /// `Ok(Some(done))` means the page hard-faulted and its read
    /// completes at `done` (which may be in the past — then the fault
    /// cost nothing but overhead, exactly like a zero-wait stall).
    fn touch_page_nb(&mut self, vpage: u64, write: bool) -> Result<Option<Ns>, OsError> {
        self.settle(vpage);
        let page = self.pages[vpage as usize];
        match page.state {
            PageState::Resident { .. } => self.touch_page(vpage, write).map(|_| None),
            PageState::InFlight { ticket } => {
                // Same bookkeeping as the blocking in-flight arm, minus
                // the stall itself.
                self.charge(TimeCategory::SystemFault, self.params.fault_overhead_ns);
                self.stats.hard_faults += 1;
                self.stats.prefetched_faults_inflight += 1;
                if !self.tenants.is_empty() {
                    self.disks.promote(ticket, self.now);
                }
                let completion = self.disks.wait_for_detail(ticket);
                let arrival = completion.at;
                let lt0 = self.prof_start();
                let cause = self.classify_late(vpage, self.now, completion);
                let waited = arrival.saturating_sub(self.now);
                self.stats.fault_wait.push(waited as f64);
                self.stats.late_prefetch_stall_ns += waited;
                if let Some(mx) = &mut self.metrics {
                    mx.fault_wait.record(waited);
                    mx.ledger.consumed_late_caused(vpage, arrival, cause);
                }
                self.prof_end(lt0, MachineBucket::Ledger);
                if page.span != 0 {
                    self.trace_event(TraceEvent::PrefetchConsume {
                        page: vpage,
                        span: page.span,
                        late: true,
                    });
                }
                self.inflight -= 1;
                self.note_tenant_inflight(vpage, -1);
                self.note_tenant_fault(waited);
                self.resident += 1;
                let p = &mut self.pages[vpage as usize];
                p.touched = true;
                p.prefetch_tag = false;
                p.span = 0;
                p.state = PageState::Resident {
                    dirty: write,
                    referenced: true,
                    on_free_list: false,
                };
                self.policy_touch(vpage, TouchKind::PrefetchedLate);
                Ok(Some(arrival))
            }
            PageState::Unmapped => {
                self.charge(TimeCategory::SystemFault, self.params.fault_overhead_ns);
                self.stats.hard_faults += 1;
                if page.prefetch_tag {
                    self.stats.prefetched_faults_lost += 1;
                } else {
                    self.stats.non_prefetched_faults += 1;
                }
                self.enforce_memory_quota();
                self.alloc_frame_demand()?;
                let (disk, block) = self.fs.place(self.swap, vpage).map_err(OsError::Fs)?;
                let (done, degraded) = match self.demand_read_submit(vpage, disk, block) {
                    Ok(v) => v,
                    Err(OsError::Crashed { .. }) => {
                        let p = &mut self.pages[vpage as usize];
                        p.state = PageState::Resident {
                            dirty: write,
                            referenced: true,
                            on_free_list: false,
                        };
                        p.touched = true;
                        p.prefetch_tag = false;
                        p.span = 0;
                        self.resident += 1;
                        return Ok(Some(self.now));
                    }
                    Err(e) => return Err(e),
                };
                let waited = done.saturating_sub(self.now);
                if degraded {
                    self.stats.degraded_read_ns += waited;
                }
                self.stats.fault_wait.push(waited as f64);
                self.note_tenant_fault(waited);
                if let Some(mx) = &mut self.metrics {
                    mx.fault_wait.record(waited);
                }
                self.trace_event(TraceEvent::HardFault {
                    page: vpage,
                    waited,
                });
                let p = &mut self.pages[vpage as usize];
                p.state = PageState::Resident {
                    dirty: write,
                    referenced: true,
                    on_free_list: false,
                };
                p.touched = true;
                p.prefetch_tag = false;
                p.span = 0;
                self.resident += 1;
                self.bit_in(vpage);
                self.run_daemon();
                self.note_free_level();
                self.policy_touch(vpage, TouchKind::HardFault);
                Ok(Some(done))
            }
        }
    }

    /// Post-crash page touch: pure metadata bookkeeping, no disk, no
    /// time, no fault statistics. Keeps frame counters consistent so a
    /// later [`Machine::recover`] starts from sane accounting.
    fn touch_page_crashed(&mut self, vpage: u64, write: bool) {
        let page = self.pages[vpage as usize];
        match page.state {
            PageState::Resident {
                on_free_list: true, ..
            } => self.reclaimable -= 1,
            PageState::Resident { .. } => {}
            PageState::InFlight { .. } => {
                self.inflight -= 1;
                self.note_tenant_inflight(vpage, -1);
                self.resident += 1;
            }
            PageState::Unmapped => self.resident += 1,
        }
        let dirty = matches!(page.state, PageState::Resident { dirty: true, .. });
        let p = &mut self.pages[vpage as usize];
        p.state = PageState::Resident {
            dirty: dirty || write,
            referenced: true,
            on_free_list: false,
        };
        p.touched = true;
        p.prefetch_tag = false;
        p.span = 0;
    }

    /// Touch one page; returns whether it hard-faulted (stalled on disk).
    fn touch_page(&mut self, vpage: u64, write: bool) -> Result<bool, OsError> {
        self.settle(vpage);
        let page = self.pages[vpage as usize];
        match page.state {
            PageState::Resident {
                dirty,
                on_free_list: false,
                ..
            } => {
                // In memory and active: classify the first touch after a
                // load, update reference/dirty bits, no fault.
                if !page.touched {
                    if page.prefetch_tag {
                        self.stats.prefetched_hits += 1;
                        let lt0 = self.prof_start();
                        if let Some(mx) = &mut self.metrics {
                            mx.ledger.consumed(vpage, self.now);
                        }
                        self.prof_end(lt0, MachineBucket::Ledger);
                        if page.span != 0 {
                            self.trace_event(TraceEvent::PrefetchConsume {
                                page: vpage,
                                span: page.span,
                                late: false,
                            });
                        }
                    } else {
                        // Loaded by a demand fault; already classified
                        // at fault time.
                    }
                }
                let first_touch = !page.touched;
                let p = &mut self.pages[vpage as usize];
                p.touched = true;
                p.prefetch_tag = false;
                p.span = 0;
                p.state = PageState::Resident {
                    dirty: dirty || write,
                    referenced: true,
                    on_free_list: false,
                };
                if first_touch && page.prefetch_tag {
                    self.policy_touch(vpage, TouchKind::PrefetchedTimely);
                }
                Ok(false)
            }
            PageState::Resident {
                dirty,
                on_free_list: true,
                ..
            } => {
                // Soft fault: reclaim from the free list, no disk I/O.
                self.charge(
                    TimeCategory::SystemFault,
                    self.params.soft_fault_overhead_ns,
                );
                self.stats.soft_faults += 1;
                self.reclaimable -= 1;
                self.trace_event(TraceEvent::SoftFault { page: vpage });
                let first_touch = !page.touched;
                if first_touch && page.prefetch_tag {
                    // Loaded from disk by a prefetch, released/evicted
                    // before first use, but still mapped: the original
                    // fault was eliminated.
                    self.stats.prefetched_hits += 1;
                    if let Some(mx) = &mut self.metrics {
                        mx.ledger.consumed(vpage, self.now);
                    }
                    if page.span != 0 {
                        self.trace_event(TraceEvent::PrefetchConsume {
                            page: vpage,
                            span: page.span,
                            late: false,
                        });
                    }
                }
                let p = &mut self.pages[vpage as usize];
                p.touched = true;
                p.prefetch_tag = false;
                p.span = 0;
                p.state = PageState::Resident {
                    dirty: dirty || write,
                    referenced: true,
                    on_free_list: false,
                };
                // Back in active use: restore its bit (a release had
                // cleared it). The stale deque entry is pruned lazily.
                self.bit_in(vpage);
                self.note_free_level();
                self.policy_touch(vpage, TouchKind::SoftFault);
                Ok(false)
            }
            PageState::InFlight { ticket } => {
                // Fault on a page whose prefetch is still in progress:
                // stall for the residual latency only. `wait_for`
                // redeems this page's completion unit, so the page
                // transitions directly (a settle would redeem twice).
                // On a multi-tenant machine the queued read is first
                // promoted to demand class — somebody is blocked on it
                // now, and it must not wait out the hint shares.
                self.charge(TimeCategory::SystemFault, self.params.fault_overhead_ns);
                self.stats.hard_faults += 1;
                self.stats.prefetched_faults_inflight += 1;
                if !self.tenants.is_empty() {
                    self.disks.promote(ticket, self.now);
                }
                let completion = self.disks.wait_for_detail(ticket);
                let arrival = completion.at;
                let cause = self.classify_late(vpage, self.now, completion);
                let waited = self.stall_until(arrival);
                self.stats.fault_wait.push(waited as f64);
                self.stats.late_prefetch_stall_ns += waited;
                if let Some(mx) = &mut self.metrics {
                    mx.fault_wait.record(waited);
                    mx.ledger.consumed_late_caused(vpage, arrival, cause);
                }
                if page.span != 0 {
                    self.trace_event(TraceEvent::PrefetchConsume {
                        page: vpage,
                        span: page.span,
                        late: true,
                    });
                }
                self.inflight -= 1;
                self.note_tenant_inflight(vpage, -1);
                self.note_tenant_fault(waited);
                self.resident += 1;
                let p = &mut self.pages[vpage as usize];
                p.touched = true;
                p.prefetch_tag = false;
                p.span = 0;
                p.state = PageState::Resident {
                    dirty: write,
                    referenced: true,
                    on_free_list: false,
                };
                self.policy_touch(vpage, TouchKind::PrefetchedLate);
                Ok(true)
            }
            PageState::Unmapped => {
                // Hard fault: full kernel overhead plus the whole disk
                // latency.
                self.charge(TimeCategory::SystemFault, self.params.fault_overhead_ns);
                self.stats.hard_faults += 1;
                if page.prefetch_tag {
                    // Prefetched at some point, but the page was dropped
                    // or flushed before use.
                    self.stats.prefetched_faults_lost += 1;
                } else {
                    self.stats.non_prefetched_faults += 1;
                }
                self.enforce_memory_quota();
                self.alloc_frame_demand()?;
                let (disk, block) = self.fs.place(self.swap, vpage).map_err(OsError::Fs)?;
                let (done, degraded) = match self.demand_read_submit(vpage, disk, block) {
                    Ok(v) => v,
                    Err(OsError::Crashed { .. }) => {
                        // The power died under this very fault. Serve it
                        // zombie-style (the in-memory image is still
                        // authoritative for the interpreter) so `touch`
                        // callers do not panic mid-kernel.
                        let p = &mut self.pages[vpage as usize];
                        p.state = PageState::Resident {
                            dirty: write,
                            referenced: true,
                            on_free_list: false,
                        };
                        p.touched = true;
                        p.prefetch_tag = false;
                        p.span = 0;
                        self.resident += 1;
                        return Ok(true);
                    }
                    Err(e) => return Err(e),
                };
                let waited = self.stall_until(done);
                if degraded {
                    self.stats.degraded_read_ns += waited;
                }
                self.stats.fault_wait.push(waited as f64);
                self.note_tenant_fault(waited);
                if let Some(mx) = &mut self.metrics {
                    mx.fault_wait.record(waited);
                }
                self.trace_event(TraceEvent::HardFault {
                    page: vpage,
                    waited,
                });
                let p = &mut self.pages[vpage as usize];
                p.state = PageState::Resident {
                    dirty: write,
                    referenced: true,
                    on_free_list: false,
                };
                p.touched = true;
                p.prefetch_tag = false;
                p.span = 0;
                self.resident += 1;
                self.bit_in(vpage);
                self.run_daemon();
                self.note_free_level();
                self.policy_touch(vpage, TouchKind::HardFault);
                Ok(true)
            }
        }
    }

    // ------------------------------------------------------------------
    // Prefetch policy (the pluggable rival of the compiler's hints)
    // ------------------------------------------------------------------

    /// Replace the installed prefetch policy. The bench harness uses
    /// this to install a replaying [`oocp_policy::HistoryReplay`] for
    /// the second pass of a record/replay run.
    pub fn set_policy(&mut self, pol: Box<dyn PrefetchPolicy>) {
        self.policy = Some(pol);
    }

    /// Name of the installed policy, if any.
    pub fn policy_name(&self) -> Option<&'static str> {
        self.policy.as_ref().map(|p| p.name())
    }

    /// The miss trace recorded by the installed policy, if it is a
    /// recorder (see [`oocp_policy::PrefetchPolicy::miss_trace`]).
    pub fn policy_miss_trace(&self) -> Option<Vec<u64>> {
        self.policy.as_ref()?.miss_trace().map(<[u64]>::to_vec)
    }

    /// Suspend or resume the policy hooks. The runtime pauses reactive
    /// policies while it is degraded to demand-only paging (injected
    /// hint traffic is exactly what degraded mode exists to stop) and
    /// resumes them on recovery. The policy object keeps its state.
    pub fn set_policy_enabled(&mut self, enabled: bool) {
        self.policy_paused = !enabled;
    }

    /// Whether the observation hooks should fire at all.
    #[inline]
    fn policy_ready(&self) -> bool {
        self.policy.is_some() && !self.policy_paused && self.crashed.is_none()
    }

    /// Mirror the policy's own counters into [`OsStats`] so reports and
    /// baselines see them without reaching into the trait object.
    fn sync_policy_counters(&mut self) {
        if let Some(pol) = &self.policy {
            let c = pol.counters();
            self.stats.policy_window_peak = c.window_peak;
            self.stats.policy_distance_retunes = c.distance_retunes;
            self.stats.policy_late_rate_samples = c.late_rate_samples;
        }
    }

    /// Observation hook: a first demand touch (or fault) resolved.
    fn policy_touch(&mut self, vpage: u64, kind: TouchKind) {
        if !self.policy_ready() {
            return;
        }
        let now = self.now;
        let mut act = PolicyActions::default();
        if let Some(pol) = self.policy.as_mut() {
            pol.on_touch(vpage, kind, now, &mut act);
        }
        self.sync_policy_counters();
        if !act.is_empty() {
            self.apply_policy_actions(act);
        }
    }

    /// Observation hook: the program issued a hint call.
    fn policy_hint(&mut self, prefetch: Option<(u64, u64)>, release: Option<(u64, u64)>) {
        if !self.policy_ready() {
            return;
        }
        let now = self.now;
        let mut act = PolicyActions::default();
        if let Some(pol) = self.policy.as_mut() {
            pol.on_hint(prefetch, release, now, &mut act);
        }
        self.sync_policy_counters();
        if !act.is_empty() {
            self.apply_policy_actions(act);
        }
    }

    /// Apply the actions a hook requested. Injected prefetches and
    /// releases flow through the ordinary hint machinery (`do_prefetch`
    /// / `do_release`) but charge no hint-syscall time — the policy
    /// lives inside the kernel, like Linux readahead, rather than
    /// calling into it. The `policy_issue` flag makes those paths
    /// attribute the pages to the policy and tag the disk requests.
    fn apply_policy_actions(&mut self, act: PolicyActions) {
        self.policy_issue = true;
        // Releases first: a streaming policy frees the pages behind its
        // window in the same action batch that extends it ahead, and the
        // freed frames must be visible to the prefetch admission check.
        for (start, count) in act.release {
            self.do_release(start, count);
        }
        for (start, count) in act.prefetch {
            // Injections get first-class spans from the same counter as
            // prefetch lifecycle spans, so the two families can never
            // collide in the Chrome-trace export and tracediff aligns
            // injections across runs instead of skipping instants.
            let span = self.next_span;
            self.next_span += 1;
            self.trace_event(TraceEvent::PolicyInject {
                page: start,
                count,
                span,
            });
            self.do_prefetch(start, count);
        }
        self.policy_issue = false;
        // The deliberate rule-breaker: only `BrokenPolicy` ever asks for
        // this, and only so the timing-only oracle can prove it notices.
        for vpage in act.corrupt {
            if vpage < self.total_pages() {
                let off = (vpage * self.params.page_bytes) as usize;
                self.data[off] ^= 0xFF;
            }
        }
        self.note_free_level();
    }

    // ------------------------------------------------------------------
    // Hints (system calls issued by the run-time layer)
    // ------------------------------------------------------------------

    /// Prefetch `npages` pages starting at `start_page` (system call).
    pub fn sys_prefetch(&mut self, start_page: u64, npages: u64) {
        self.hint_call(Some((start_page, npages)), None);
    }

    /// Release `npages` pages starting at `start_page` (system call).
    pub fn sys_release(&mut self, start_page: u64, npages: u64) {
        self.hint_call(None, Some((start_page, npages)));
    }

    /// Bundled prefetch + release in one system call (the compiler's
    /// `prefetch_release_block`).
    pub fn sys_prefetch_release(&mut self, pf_page: u64, pf_n: u64, rel_page: u64, rel_n: u64) {
        self.hint_call(Some((pf_page, pf_n)), Some((rel_page, rel_n)));
    }

    fn hint_call(&mut self, prefetch: Option<(u64, u64)>, release: Option<(u64, u64)>) {
        debug_assert!(!self.finished, "hint after finish()");
        if self.durable.is_some() {
            self.ensure_durable_snapshot();
        }
        if self.crashed.is_some() {
            // Hints are advice; a dead machine takes none.
            return;
        }
        if !self.pressure.is_empty() {
            self.apply_pressure();
        }
        if self.dead_disk.is_some() {
            self.pump_rebuild();
        }
        self.stats.hint_syscalls += 1;
        let pages_named = prefetch.map_or(0, |(_, n)| n) + release.map_or(0, |(_, n)| n);
        self.charge(
            TimeCategory::SystemPrefetch,
            self.params.hint_syscall_ns + self.params.hint_per_page_ns * pages_named,
        );
        // Release first: it can hand frames to the prefetch half of a
        // bundled call.
        if let Some((start, n)) = release {
            self.do_release(start, n);
        }
        if let Some((start, n)) = prefetch {
            self.do_prefetch(start, n);
        }
        self.policy_hint(prefetch, release);
        self.note_free_level();
    }

    fn do_release(&mut self, start: u64, n: u64) {
        let end = (start + n).min(self.total_pages());
        for vpage in start.min(self.total_pages())..end {
            // On a multi-tenant machine a release is advice about the
            // caller's own pages only: a hint that runs past the
            // segment boundary must not evict a neighbour.
            if !self.tenants.is_empty() && self.owner_of(vpage) != Some(self.cur_tenant) {
                continue;
            }
            self.stats.release_pages += 1;
            if self.policy_issue {
                self.stats.policy_injected_release_pages += 1;
            }
            self.settle(vpage);
            if let PageState::Resident {
                on_free_list: false,
                ..
            } = self.pages[vpage as usize].state
            {
                self.queue_on_free_list(vpage, true);
                self.stats.release_pages_effective += 1;
                self.trace_event(TraceEvent::Release {
                    page: vpage,
                    count: 1,
                });
                // A released page is still mapped, but it must not
                // filter future prefetches (reclaiming it from the free
                // list is useful work), so its bit is cleared until it
                // is re-loaded, reclaimed by a prefetch, or soft-faulted
                // back into active use.
                self.bit_out(vpage);
            }
            // In-flight and unmapped pages: release is a no-op hint.
        }
    }

    /// Drop one prefetch hint page at the arbitration gate, attributed
    /// to the current tenant's `quota` (true) or to pressure shedding
    /// (false).
    fn drop_hint(&mut self, vpage: u64, quota: bool) {
        self.stats.prefetch_pages_dropped += 1;
        let t = self.cur_tenant;
        if quota {
            self.stats.hints_dropped_quota += 1;
            self.tenants[t as usize].stats.hints_dropped_quota += 1;
            if let Some(mx) = &mut self.metrics {
                mx.ledger.dropped_quota();
            }
            self.trace_event(TraceEvent::HintDropQuota {
                page: vpage,
                tenant: t,
            });
        } else {
            self.stats.hints_dropped_pressure += 1;
            self.tenants[t as usize].stats.hints_dropped_pressure += 1;
            if let Some(mx) = &mut self.metrics {
                mx.ledger.dropped_pressure();
            }
            self.trace_event(TraceEvent::HintDropPressure {
                page: vpage,
                tenant: t,
            });
        }
        // Like a memory-pressure drop: keep the tag so a later fault on
        // the page classifies as "prefetched but lost" (Figure 4(a)).
        self.pages[vpage as usize].prefetch_tag = true;
    }

    fn do_prefetch(&mut self, start: u64, n: u64) {
        let end = (start + n).min(self.total_pages());
        let start = start.min(self.total_pages());
        // Arbitration state for this hint: the pressure level at entry,
        // the issuing tenant's policy, and (if it has a frame quota) a
        // running count of its charged frames, maintained incrementally
        // so the per-page gate stays O(1).
        let multi = !self.tenants.is_empty();
        let level = self.pressure_level();
        let spec = self.tenant_spec(self.cur_tenant);
        let mut mem_used =
            (multi && spec.memory_frames.is_some()).then(|| self.tenant_usage(self.cur_tenant));
        // Pages that need disk reads, grouped into contiguous spans.
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for vpage in start..end {
            self.stats.prefetch_pages_requested += 1;
            if self.policy_issue {
                self.stats.policy_injected_prefetch_pages += 1;
            }
            self.settle(vpage);
            match self.pages[vpage as usize].state {
                PageState::Resident {
                    on_free_list: false,
                    ..
                } => {
                    self.stats.prefetch_pages_unnecessary += 1;
                }
                PageState::Resident {
                    dirty,
                    on_free_list: true,
                    ..
                } => {
                    // Reclaim from the free list: useful work, no I/O.
                    self.reclaimable -= 1;
                    let p = &mut self.pages[vpage as usize];
                    p.state = PageState::Resident {
                        dirty,
                        referenced: true,
                        on_free_list: false,
                    };
                    p.prefetch_tag = true;
                    self.stats.prefetch_pages_reclaimed += 1;
                    self.bit_in(vpage);
                    if let Some(u) = &mut mem_used {
                        *u += 1; // free-list page back on the books
                    }
                }
                PageState::InFlight { .. } => {
                    self.stats.prefetch_pages_inflight += 1;
                }
                PageState::Unmapped => {
                    if multi {
                        let t = self.cur_tenant;
                        let inflight = self.tenants[t as usize].stats.inflight_prefetch;
                        // Pressure shedding, strictly QoS-ordered:
                        // brownout drops every non-guaranteed hint;
                        // elevation clamps best-effort pipelining.
                        let shed = match (spec.qos, level) {
                            (QosClass::Guaranteed, _) => false,
                            (_, PressureLevel::Brownout) => true,
                            (QosClass::BestEffort, PressureLevel::Elevated) => {
                                inflight >= ELEVATED_BEST_EFFORT_SLOTS
                            }
                            _ => false,
                        };
                        if shed {
                            self.drop_hint(vpage, false);
                            continue;
                        }
                        let over_slots = spec.prefetch_slots.is_some_and(|q| inflight >= q);
                        let over_mem = match (mem_used, spec.memory_frames) {
                            (Some(u), Some(q)) => u >= q.max(1),
                            _ => false,
                        };
                        if over_slots || over_mem {
                            self.drop_hint(vpage, true);
                            continue;
                        }
                    }
                    if !self.alloc_frame_prefetch() {
                        self.stats.prefetch_pages_dropped += 1;
                        if let Some(mx) = &mut self.metrics {
                            mx.ledger.dropped_no_memory();
                        }
                        self.trace_event(TraceEvent::PrefetchDrop { page: vpage });
                        // Leave any prior prefetch_tag: a dropped hint
                        // still marks the fault as "prefetched" for
                        // Figure 4(a).
                        self.pages[vpage as usize].prefetch_tag = true;
                        continue;
                    }
                    self.inflight += 1;
                    self.note_tenant_inflight(vpage, 1);
                    if let Some(info) = self.tenants.get_mut(self.cur_tenant as usize) {
                        info.stats.prefetch_pages_issued += 1;
                    }
                    if let Some(u) = &mut mem_used {
                        *u += 1;
                    }
                    self.stats.prefetch_pages_issued += 1;
                    // Span ids are allocated in page order, so a
                    // contiguous issue span holds consecutive ids (the
                    // PrefetchIssue trace event relies on this).
                    let sid = self.next_span;
                    self.next_span += 1;
                    let p = &mut self.pages[vpage as usize];
                    p.prefetch_tag = true;
                    p.span = sid;
                    // Record the issue-time environment (journal-stall
                    // count, degraded-mode epoch, redundancy flags) so
                    // a late consumption can tell interference during
                    // the flight from a plain short lead.
                    let (now, js, de) = (self.now, self.stats.journal_stalls, self.degrade_epoch);
                    let flags = if self.dead_disk.is_some() && self.parity.is_some() {
                        let mut f = ISSUE_REBUILD_ACTIVE;
                        let home = self.fs.place(self.swap, vpage).map(|(d, _)| d);
                        if home.is_ok_and(|d| self.read_goes_degraded(d, vpage)) {
                            f |= ISSUE_DEGRADED;
                        }
                        f
                    } else {
                        0
                    };
                    if let Some(mx) = &mut self.metrics {
                        mx.ledger.issued_ctx_flags(vpage, now, js, de, flags);
                    }
                    self.bit_in(vpage);
                    match spans.last_mut() {
                        Some((s, c)) if *s + *c == vpage => *c += 1,
                        _ => spans.push((vpage, 1)),
                    }
                }
            }
        }
        // Issue the disk reads: each contiguous span becomes one run per
        // disk (the striping turns k consecutive pages into <= k
        // single-positioning requests on distinct disks).
        for (span_start, count) in spans {
            let first_span = self.pages[span_start as usize].span;
            self.trace_event(TraceEvent::PrefetchIssue {
                page: span_start,
                count,
                span: first_span,
            });
            let runs = self
                .fs
                .place_run(self.swap, span_start, count)
                .expect("prefetch span inside the address space");
            for run in runs {
                // The data pages this run covers, in block order. The
                // inverse placement works in both layouts (parity
                // blocks never appear in `place_run` output); for the
                // plain layout it reproduces the historical
                // `first + i * ndisks` stride exactly.
                let pages: Vec<u64> = (0..run.nblocks)
                    .map(|i| {
                        self.fs
                            .page_at(self.swap, run.disk, run.start_block + i)
                            .expect("run inside the file")
                            .expect("placed runs cover data blocks only")
                    })
                    .collect();
                let first = pages[0];
                if self.parity.is_some() && self.dead_disk.is_some_and(|(d, _)| d == run.disk) {
                    // The run targets the dead slot: handle it page by
                    // page — rebuilt rows read normally from the
                    // spare, un-rebuilt rows reroute into survivor
                    // fan-outs instead of being dropped.
                    for (i, &vpage) in pages.iter().enumerate() {
                        self.prefetch_degraded_page(vpage, run.disk, run.start_block + i as u64);
                    }
                    continue;
                }
                match self.disks.try_track(
                    run.disk,
                    self.now,
                    Request::new(ReqKind::PrefetchRead, run.start_block, run.nblocks)
                        .with_tenant(self.cur_tenant)
                        .with_policy_injected(self.policy_issue),
                ) {
                    Ok(ticket) => {
                        // Every page of the run redeems one unit of the
                        // run's ticket when the request completes.
                        for &vpage in &pages {
                            self.pages[vpage as usize].state = PageState::InFlight { ticket };
                        }
                    }
                    Err(IoError::DiskDead { disk: d, at }) => {
                        if self.note_disk_death(d, at) {
                            // First contact with the freshly dead disk:
                            // the spare is installed; reroute the run.
                            for (i, &vpage) in pages.iter().enumerate() {
                                self.prefetch_degraded_page(
                                    vpage,
                                    run.disk,
                                    run.start_block + i as u64,
                                );
                            }
                        } else {
                            // No redundancy: the hint is lost like any
                            // other I/O error (demand paths surface the
                            // typed loss).
                            self.stats.io_errors_observed += 1;
                            self.trace_event(TraceEvent::IoError {
                                page: Some(first),
                                disk: run.disk,
                            });
                            self.trace_event(TraceEvent::HintDropOnError {
                                page: first,
                                count: run.nblocks,
                            });
                            for &vpage in &pages {
                                self.revert_prefetch_page(vpage, RevertCause::IoError);
                            }
                        }
                    }
                    Err(IoError::QueueFull { .. }) => {
                        // Backpressure, not a fault: the hint is
                        // silently dropped (the non-binding contract),
                        // with no error counted and no retry.
                        self.trace_event(TraceEvent::HintDropQueueFull {
                            page: first,
                            count: run.nblocks,
                        });
                        for &vpage in &pages {
                            debug_assert!(matches!(
                                self.pages[vpage as usize].state,
                                PageState::Unmapped
                            ));
                            self.inflight -= 1;
                            self.note_tenant_inflight(vpage, -1);
                            self.bit_out(vpage);
                            if let Some(mx) = &mut self.metrics {
                                mx.ledger.dropped_queue_full(vpage);
                            }
                            self.pages[vpage as usize].span = 0;
                            self.stats.prefetch_pages_issued -= 1;
                            self.stats.prefetch_pages_dropped += 1;
                            self.stats.hints_dropped_queue_full += 1;
                        }
                    }
                    Err(IoError::Crashed { at }) => {
                        // Power loss caught by a prefetch submission:
                        // latch the crash and drop the hint silently
                        // (zombie mode takes over from here).
                        self.crashed = Some(at);
                        for &vpage in &pages {
                            debug_assert!(matches!(
                                self.pages[vpage as usize].state,
                                PageState::Unmapped
                            ));
                            self.inflight -= 1;
                            self.note_tenant_inflight(vpage, -1);
                            self.bit_out(vpage);
                            self.pages[vpage as usize].span = 0;
                            self.stats.prefetch_pages_issued -= 1;
                            self.stats.prefetch_pages_dropped += 1;
                        }
                    }
                    Err(_) => {
                        // Prefetches are hints: no retry, no surfaced
                        // error. Revert the pages to dropped-hint
                        // bookkeeping (they keep their prefetch tag so
                        // a later fault is classified "prefetched but
                        // lost", exactly like a memory-pressure drop).
                        self.stats.io_errors_observed += 1;
                        self.trace_event(TraceEvent::IoError {
                            page: Some(first),
                            disk: run.disk,
                        });
                        self.trace_event(TraceEvent::HintDropOnError {
                            page: first,
                            count: run.nblocks,
                        });
                        for &vpage in &pages {
                            debug_assert!(matches!(
                                self.pages[vpage as usize].state,
                                PageState::Unmapped
                            ));
                            self.inflight -= 1;
                            self.note_tenant_inflight(vpage, -1);
                            self.bit_out(vpage);
                            if let Some(mx) = &mut self.metrics {
                                mx.ledger.dropped_io_error(vpage);
                            }
                            self.pages[vpage as usize].span = 0;
                            self.stats.prefetch_pages_issued -= 1;
                            self.stats.prefetch_pages_dropped += 1;
                            self.stats.hints_dropped_on_error += 1;
                        }
                    }
                }
            }
        }
    }

    /// Submit one prefetch page whose home block sits on the dead
    /// slot. Rebuilt rows read normally (the spare holds the block);
    /// un-rebuilt rows reroute into a survivor fan-out — the hint is
    /// still useful, it just costs `ndisks - 1` reads: the parity-
    /// block read carries the page's ticket, the sibling data reads
    /// are posted untracked to model the fan-out's queue occupancy.
    fn prefetch_degraded_page(&mut self, vpage: u64, disk: usize, block: u64) {
        let Ok(row) = self.fs.row_of(self.swap, vpage) else {
            self.revert_prefetch_page(vpage, RevertCause::IoError);
            return;
        };
        let outcome = if row < self.rebuilt_rows {
            self.disks.try_track(
                disk,
                self.now,
                Request::new(ReqKind::PrefetchRead, block, 1)
                    .with_tenant(self.cur_tenant)
                    .with_policy_injected(self.policy_issue),
            )
        } else {
            let fanout = self
                .fs
                .row_pages(self.swap, row)
                .ok()
                .zip(self.fs.parity_place(self.swap, row).ok());
            match fanout {
                Some((pages, (pd, pb))) => {
                    for p in pages {
                        if p == vpage {
                            continue;
                        }
                        if let Ok((d, b)) = self.fs.place(self.swap, p) {
                            self.post_background(d, ReqKind::PrefetchRead, b);
                        }
                    }
                    let r = self.disks.try_track(
                        pd,
                        self.now,
                        Request::new(ReqKind::PrefetchRead, pb, 1)
                            .with_tenant(self.cur_tenant)
                            .with_policy_injected(self.policy_issue),
                    );
                    if r.is_ok() {
                        self.stats.hints_rerouted_degraded += 1;
                    }
                    r
                }
                None => Err(IoError::EmptyRequest),
            }
        };
        match outcome {
            Ok(ticket) => {
                self.pages[vpage as usize].state = PageState::InFlight { ticket };
            }
            Err(IoError::QueueFull { .. }) => {
                self.trace_event(TraceEvent::HintDropQueueFull {
                    page: vpage,
                    count: 1,
                });
                self.revert_prefetch_page(vpage, RevertCause::QueueFull);
            }
            Err(IoError::Crashed { at }) => {
                self.crashed = Some(at);
                self.revert_prefetch_page(vpage, RevertCause::Crashed);
            }
            Err(_) => {
                self.stats.io_errors_observed += 1;
                self.trace_event(TraceEvent::IoError {
                    page: Some(vpage),
                    disk,
                });
                self.trace_event(TraceEvent::HintDropOnError {
                    page: vpage,
                    count: 1,
                });
                self.revert_prefetch_page(vpage, RevertCause::IoError);
            }
        }
    }

    /// Revert one admitted prefetch page whose submission was refused —
    /// the single-page version of the span error arms' bookkeeping.
    fn revert_prefetch_page(&mut self, vpage: u64, cause: RevertCause) {
        debug_assert!(matches!(
            self.pages[vpage as usize].state,
            PageState::Unmapped
        ));
        self.inflight -= 1;
        self.note_tenant_inflight(vpage, -1);
        self.bit_out(vpage);
        self.pages[vpage as usize].span = 0;
        self.stats.prefetch_pages_issued -= 1;
        self.stats.prefetch_pages_dropped += 1;
        match cause {
            RevertCause::QueueFull => {
                self.stats.hints_dropped_queue_full += 1;
                if let Some(mx) = &mut self.metrics {
                    mx.ledger.dropped_queue_full(vpage);
                }
            }
            RevertCause::IoError => {
                self.stats.hints_dropped_on_error += 1;
                if let Some(mx) = &mut self.metrics {
                    mx.ledger.dropped_io_error(vpage);
                }
            }
            RevertCause::Crashed => {}
        }
    }

    // ------------------------------------------------------------------
    // Run control
    // ------------------------------------------------------------------

    /// Warm-start helper: make pages resident without charging any time
    /// (Figure 6's warm-started runs preload the data before timing).
    ///
    /// # Panics
    ///
    /// Panics if the preloaded range exceeds the resident limit — warm
    /// starting is only meaningful for in-core data sets.
    pub fn preload(&mut self, start_page: u64, npages: u64) {
        assert!(
            self.resident + self.inflight + npages <= self.params.resident_limit,
            "preload exceeds resident limit"
        );
        for vpage in start_page..start_page + npages {
            if matches!(self.pages[vpage as usize].state, PageState::Unmapped) {
                self.pages[vpage as usize] = Page {
                    state: PageState::Resident {
                        dirty: false,
                        referenced: true,
                        on_free_list: false,
                    },
                    prefetch_tag: false,
                    touched: true,
                    bit_noted: false,
                    span: 0,
                };
                self.resident += 1;
                self.bit_in(vpage);
            }
        }
        self.note_free_level();
    }

    /// Change the number of frames available to the application.
    ///
    /// Models a multiprogrammed environment (the paper's future work):
    /// when another application claims memory, the limit shrinks and the
    /// pageout daemon evicts down to it; when memory is returned, the
    /// limit grows again. Shrinking below the pages currently in flight
    /// takes effect as their I/O completes.
    pub fn set_resident_limit(&mut self, frames: u64) {
        let min = self.params.high_water + self.params.demand_reserve + 2;
        self.params.resident_limit = frames.max(min);
        // Evict until we fit (in-flight pages cannot be unmapped).
        let mut guard = 0;
        while self.resident + self.inflight > self.params.resident_limit
            && self.resident > 0
            && guard < 2 * self.total_pages()
        {
            if let Some(p) = self.pop_free_list() {
                self.reclaim(p);
            } else {
                self.force_evict_one();
            }
            guard += 1;
        }
        self.note_free_level();
    }

    /// Schedule future resident-limit changes, applied lazily as the
    /// simulated clock passes each `(time, frames)` entry.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is not sorted by time.
    pub fn set_pressure_schedule(&mut self, mut schedule: Vec<(Ns, u64)>) {
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "pressure schedule must be sorted by time"
        );
        schedule.reverse(); // pop from the back as time advances
        self.pressure = schedule;
        self.apply_pressure();
    }

    /// Apply any pressure-schedule entries whose time has passed.
    fn apply_pressure(&mut self) {
        while let Some(&(at, frames)) = self.pressure.last() {
            if at > self.now {
                break;
            }
            self.pressure.pop();
            self.set_resident_limit(frames);
        }
    }

    /// Clock-scan resident pages until one lands on the free list.
    fn force_evict_one(&mut self) {
        let total = self.total_pages();
        for _ in 0..2 * total {
            let v = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % total;
            self.settle(v);
            if let PageState::Resident {
                dirty,
                referenced,
                on_free_list: false,
            } = self.pages[v as usize].state
            {
                if referenced {
                    self.pages[v as usize].state = PageState::Resident {
                        dirty,
                        referenced: false,
                        on_free_list: false,
                    };
                } else {
                    self.queue_on_free_list(v, false);
                    self.stats.daemon_evictions += 1;
                    if let Some(p) = self.pop_free_list() {
                        self.reclaim(p);
                    }
                    return;
                }
            }
        }
    }

    /// End the run: flush dirty pages and (by default) stall until the
    /// disks drain, mirroring the paper's applications writing their
    /// results back to disk. Flush failures are swallowed; callers who
    /// care about durability use [`Machine::try_finish`].
    pub fn finish(&mut self) {
        let _ = self.try_finish();
    }

    /// Like [`Machine::finish`], but reports every dirty page whose
    /// final contents did not durably reach the disks — write-backs
    /// abandoned after exhausted retries, and everything cut off by a
    /// simulated power loss — as a typed [`FlushError`] instead of
    /// dropping the information. Idempotent: a second call returns the
    /// same verdict without redoing any work.
    pub fn try_finish(&mut self) -> Result<(), FlushError> {
        if !self.finished {
            self.finished = true;
            if self.crashed.is_some() {
                self.finish_crashed();
            } else {
                self.finish_clean();
            }
            self.flush_failures.sort_unstable();
            self.flush_failures.dedup();
        }
        if self.flush_failures.is_empty() {
            Ok(())
        } else {
            Err(FlushError {
                vpages: self.flush_failures.clone(),
            })
        }
    }

    fn finish_clean(&mut self) {
        for vpage in 0..self.total_pages() {
            self.settle(vpage);
            if let PageState::Resident { dirty: true, .. } = self.pages[vpage as usize].state {
                self.writeback(vpage);
                if let PageState::Resident {
                    referenced,
                    on_free_list,
                    ..
                } = self.pages[vpage as usize].state
                {
                    self.pages[vpage as usize].state = PageState::Resident {
                        dirty: false,
                        referenced,
                        on_free_list,
                    };
                }
            }
        }
        // The final flush itself can be the submission that trips the
        // crash point: hand over to the crashed path if it did.
        if self.crashed.is_some() {
            self.finish_crashed();
            return;
        }
        // Dispatch everything still queued regardless of the stall
        // policy, so busy-time/utilization stats cover all accepted
        // work; only the *stall* is optional.
        let drain = self.disks.drain_all();
        self.settle_pending_durable(drain);
        if self.params.drain_at_exit {
            self.stall_until(drain);
            // Everything has completed: settle stragglers so frame
            // accounting ends clean.
            for vpage in 0..self.total_pages() {
                self.settle(vpage);
            }
        }
        // Close the lifecycle ledger: prefetched pages never touched by
        // now are wasted I/O, and the partition becomes total.
        if let Some(mx) = &mut self.metrics {
            mx.ledger.finalize();
        }
        self.note_free_level();
    }

    fn finish_crashed(&mut self) {
        self.resolve_crash();
        // Every page still dirty in memory never made it to disk.
        for vpage in 0..self.total_pages() {
            if let PageState::Resident { dirty: true, .. } = self.pages[vpage as usize].state {
                self.flush_failures.push(vpage);
            }
        }
        if let Some(mx) = &mut self.metrics {
            mx.ledger.finalize();
        }
        self.note_free_level();
    }

    /// Power stayed on to the end: every accepted durable write lands
    /// in full. Apply them to the durable store in issue order and
    /// retire their journal slots.
    fn settle_pending_durable(&mut self, drain: Ns) {
        if self.durable.is_none() {
            return;
        }
        for rec in std::mem::take(&mut self.wal_pending) {
            for t in [rec.desc, rec.pay, rec.data, rec.commit]
                .into_iter()
                .flatten()
            {
                let _ = self.disks.poll(t, drain);
            }
            if rec.data.is_some() {
                self.land_durable(rec.vpage, &rec.payload);
            }
            if let Some(j) = &mut self.journal {
                j.retire(rec.disk, rec.seq);
            }
            // Keep the committed record as scrubber repair state (the
            // simulator's stand-in for the journal's retired history).
            self.wal_durable.push(DurableRecord {
                seq: rec.seq,
                disk: rec.disk,
                vpage: rec.vpage,
                payload: rec.payload,
                committed: true,
            });
        }
        for w in std::mem::take(&mut self.plain_pending) {
            let _ = self.disks.poll(w.data, drain);
            self.land_durable(w.vpage, &w.payload);
        }
    }

    /// Freeze the in-flight writes into durable on-media state as of
    /// the power loss. Deferred (and idempotent) so submission paths
    /// only have to latch the crash; the heavy classification runs once,
    /// from [`Machine::try_finish`] or [`Machine::recover`].
    ///
    /// The per-disk write barrier makes each protocol stage's
    /// *effective* completion the max of its own completion and the
    /// prior stage's, so classification reduces to comparing effective
    /// times against the crash instant `T`:
    ///
    /// * seal after `T` — the intent never became durable; the home
    ///   block kept its old image (barrier): the update is discarded.
    /// * seal at/before `T`, data write still in flight — the home
    ///   block may be torn; the sealed journal payload can repair it.
    /// * data write done by `T` — the new image is durable.
    fn resolve_crash(&mut self) {
        let Some(t_crash) = self.crashed else {
            return;
        };
        if self.crash_resolved {
            return;
        }
        self.crash_resolved = true;
        let drain = self.disks.drain_all();
        let per_page = self.params.page_bytes / SECTOR_BYTES;
        let poll = |disks: &mut DiskArray, t: Option<Ticket>| -> Ns {
            t.and_then(|t| disks.poll(t, drain)).unwrap_or(Ns::MAX)
        };
        for rec in std::mem::take(&mut self.wal_pending) {
            let desc_done = poll(&mut self.disks, rec.desc);
            let pay_done = poll(&mut self.disks, rec.pay);
            let data_done = poll(&mut self.disks, rec.data);
            let commit_done = poll(&mut self.disks, rec.commit);
            let sealed_eff = desc_done.max(pay_done);
            let applied_eff = data_done.max(sealed_eff);
            let committed_eff = commit_done.max(applied_eff);
            if sealed_eff > t_crash {
                // Intent never sealed: the barrier kept the home block's
                // old image intact. The update is simply lost.
                self.crash_discarded.push(rec.vpage);
                self.flush_failures.push(rec.vpage);
                continue;
            }
            if applied_eff <= t_crash {
                // Data durably landed before the lights went out.
                if let Some(d) = &mut self.durable {
                    d.write_page(rec.vpage, &rec.payload);
                }
            } else if self.torn_writes {
                // The data write was caught mid-air: an arbitrary
                // sector prefix landed (possibly none, possibly all).
                let k = self
                    .crash_rng
                    .as_mut()
                    .expect("torn writes need the crash rng")
                    .next_below(per_page + 1);
                if let Some(d) = &mut self.durable {
                    d.tear_page(rec.vpage, &rec.payload, k);
                }
            }
            // Either way the sealed record is what a recovery scan of
            // the rings will find.
            self.wal_durable.push(DurableRecord {
                seq: rec.seq,
                disk: rec.disk,
                vpage: rec.vpage,
                payload: rec.payload,
                committed: committed_eff <= t_crash,
            });
        }
        for w in std::mem::take(&mut self.plain_pending) {
            let done = self.disks.poll(w.data, drain).unwrap_or(Ns::MAX);
            if done <= t_crash {
                if let Some(d) = &mut self.durable {
                    d.write_page(w.vpage, &w.payload);
                }
                continue;
            }
            let mut landed_fully = false;
            if self.torn_writes {
                let k = self
                    .crash_rng
                    .as_mut()
                    .expect("torn writes need the crash rng")
                    .next_below(per_page + 1);
                landed_fully = k >= per_page;
                if let Some(d) = &mut self.durable {
                    d.tear_page(w.vpage, &w.payload, k);
                }
            }
            if !landed_fully {
                self.crash_discarded.push(w.vpage);
                self.flush_failures.push(w.vpage);
            }
        }
    }

    /// Recover from a simulated power loss: scan the journal rings,
    /// replay committed-but-unapplied intents, discard torn and
    /// uncommitted updates (falling back to the last durable version),
    /// verify every page's stored checksum, resync the residency bit
    /// vector, and hand back a clean machine whose memory image is
    /// exactly the durable state. Consumes the crashed machine.
    ///
    /// On a machine that never crashed this is a no-op returning `self`
    /// and a default report.
    pub fn recover(mut self) -> (Machine, RecoveryReport) {
        let Some(t_crash) = self.crashed else {
            return (self, RecoveryReport::default());
        };
        self.resolve_crash();
        let mut durable = self.durable.take().expect("crash implies durability mode");
        let wal_durable = std::mem::take(&mut self.wal_durable);
        let discarded = std::mem::take(&mut self.crash_discarded);
        let total = self.total_pages();
        let mut report = RecoveryReport {
            crashed_at: t_crash,
            scanned_records: wal_durable.len() as u64,
            pages_discarded: discarded.len() as u64,
            ..RecoveryReport::default()
        };

        // A fresh machine: same geometry, same (deterministic) swap
        // layout, clock restarted at zero — the reboot.
        let mut m = Machine::try_new(self.params, total * self.params.page_bytes)
            .expect("the crashed machine's geometry was valid");
        if self.params.journal {
            m.journal = Some(
                WriteJournal::create(&mut m.fs, self.params.journal_blocks_per_disk)
                    .expect("journal fit before the crash, so it fits now"),
            );
        }

        // Phase 1: sequential scan of every journal ring (one read per
        // disk covering the whole ring extent).
        if let Some(j) = &m.journal {
            let mut done = 0;
            for d in 0..m.fs.ndisks() {
                let ext = j.extent(d);
                if let Ok(t) = m.disks.try_submit(
                    d,
                    m.now,
                    Request::new(ReqKind::DemandRead, ext.start, ext.len),
                ) {
                    done = done.max(t);
                }
            }
            m.stall_until(done);
        }

        // Phase 2: replay. Uncommitted sealed records must be replayed
        // (their data write may or may not have landed — the journal
        // payload is authoritative either way); committed records are
        // guaranteed applied and only need replay if verification says
        // otherwise (it never does — this is an invariant, not a
        // branch we expect to take).
        let mut replay_done = m.now;
        for rec in &wal_durable {
            if !durable.verify(rec.vpage) {
                report.torn_detected += 1;
            }
            if !rec.committed || !durable.verify(rec.vpage) {
                durable.write_page(rec.vpage, &rec.payload);
                report.pages_replayed += 1;
                if let Ok((disk, block)) = m.fs.place(m.swap, rec.vpage) {
                    if let Ok(t) =
                        m.disks
                            .try_submit(disk, m.now, Request::new(ReqKind::Write, block, 1))
                    {
                        replay_done = replay_done.max(t);
                    }
                }
            }
        }
        m.stall_until(replay_done);

        // Phase 3: full-surface verification sweep (one sequential read
        // per disk over the swap area), catching torn home blocks that
        // had no journal record — with the journal disabled, or plain
        // writes torn mid-air. No payload to repair from makes the page
        // unrecoverable: it reverts to whatever the torn image holds.
        let mut scan_done = m.now;
        let ndisks = m.fs.ndisks() as u64;
        let parity_rows = m.fs.rows(m.swap).unwrap_or(0);
        for d in 0..m.fs.ndisks() {
            // One sequential read per disk covering its swap extent:
            // plain striping puts every `ndisks`-th page on disk `d`;
            // the rotating-parity layout gives every disk exactly one
            // block (data or parity) per stripe row.
            let (disk, block, nblocks) = if parity_rows > 0 {
                // Row 0 places data page `o` on disk `o` and parity on
                // disk `ndisks - 1`, so each disk's extent start is
                // recoverable from the row-0 placements.
                let start = if d as u64 == ndisks - 1 {
                    m.fs.parity_place(m.swap, 0).map(|(_, b)| b)
                } else if (d as u64) < total {
                    m.fs.place(m.swap, d as u64).map(|(_, b)| b)
                } else {
                    continue;
                };
                match start {
                    Ok(b) => (d, b, parity_rows),
                    Err(_) => continue,
                }
            } else {
                let pages_on_disk = (total.saturating_sub(d as u64)).div_ceil(ndisks);
                if pages_on_disk == 0 {
                    continue;
                }
                match m.fs.place(m.swap, d as u64) {
                    Ok((disk, block)) => (disk, block, pages_on_disk),
                    Err(_) => continue,
                }
            };
            if let Ok(t) = m.disks.try_submit(
                disk,
                m.now,
                Request::new(ReqKind::DemandRead, block, nblocks),
            ) {
                scan_done = scan_done.max(t);
            }
        }
        m.stall_until(scan_done);
        for vpage in 0..total {
            if durable.verify(vpage) {
                continue;
            }
            report.torn_detected += 1;
            // Last committed journal payload for this page, if any.
            if let Some(rec) = wal_durable.iter().rev().find(|r| r.vpage == vpage) {
                durable.write_page(vpage, &rec.payload);
                report.pages_replayed += 1;
            } else {
                report.unrecoverable += 1;
                report.unrecoverable_pages.push(vpage);
            }
        }

        // Adopt the durable image as the reborn machine's memory state.
        m.data.copy_from_slice(durable.images());
        m.resync_bits();
        report.recovery_ns = m.now();
        m.stats.recovery_pages_replayed = report.pages_replayed;
        m.stats.recovery_pages_discarded = report.pages_discarded;
        m.stats.recovery_torn_detected = report.torn_detected;
        m.stats.recovery_unrecoverable = report.unrecoverable;
        m.stats.recovery_ns = report.recovery_ns;
        // The recovered machine keeps durability tracking (it has a
        // durable store with a settled baseline) but no scheduled
        // crash: the re-run is an ordinary one.
        m.durable = Some(durable);
        m.wal_durable = wal_durable;
        // Parity is re-derived wholesale from the recovered durable
        // image (replay may have changed any subset of rows, and a
        // crash mid-rebuild leaves no trustworthy incremental state).
        // The reboot replaced the hardware, so the array is whole.
        if let Some(ps) = &mut m.parity {
            let k = m.fs.ndisks() as u64 - 1;
            ps.resync(k, m.durable.as_ref().expect("just set").images(), total);
        }
        (m, report)
    }

    /// Background scrubber: verify the stored checksums of up to
    /// `max_pages` cold (unmapped) pages against the durable store and
    /// repair any corruption from committed journal state. Returns
    /// `(verified, repaired)`. A no-op outside durability mode or after
    /// a crash.
    pub fn scrub(&mut self, max_pages: u64) -> (u64, u64) {
        if self.crashed.is_some() || self.durable.is_none() {
            return (0, 0);
        }
        self.ensure_durable_snapshot();
        let (mut verified, mut repaired) = (0, 0);
        for vpage in 0..self.total_pages() {
            if verified >= max_pages {
                break;
            }
            if !matches!(self.pages[vpage as usize].state, PageState::Unmapped) {
                continue;
            }
            // Model the verification read; the scrubber runs in the
            // background, so nothing stalls on it.
            if let Ok((disk, block)) = self.fs.place(self.swap, vpage) {
                let _ = self.disks.try_post(
                    disk,
                    self.now,
                    Request::new(ReqKind::DemandRead, block, 1),
                );
            }
            verified += 1;
            let ok = self
                .durable
                .as_ref()
                .map(|d| d.verify(vpage))
                .unwrap_or(true);
            if ok {
                continue;
            }
            if let Some(rec) = self
                .wal_durable
                .iter()
                .rev()
                .find(|r| r.vpage == vpage && r.committed)
            {
                let payload = rec.payload.clone();
                // Plain `write_page`, not `land_durable`: the current
                // image is corrupt, so it cannot serve as the parity
                // XOR's "old" term. Restoring the committed content
                // restores the parity invariant as a side effect.
                if let Some(d) = &mut self.durable {
                    d.write_page(vpage, &payload);
                }
                if let Ok((disk, block)) = self.fs.place(self.swap, vpage) {
                    let _ =
                        self.disks
                            .try_post(disk, self.now, Request::new(ReqKind::Write, block, 1));
                }
                repaired += 1;
            }
        }
        self.stats.scrub_pages_verified += verified;
        self.stats.scrub_pages_repaired += repaired;
        (verified, repaired)
    }

    /// Test hook: flip bits in a durable page image without updating
    /// its stored checksum (latent media corruption for scrubber
    /// tests). Returns `false` outside durability mode.
    pub fn corrupt_durable_page(&mut self, vpage: u64) -> bool {
        self.ensure_durable_snapshot();
        match &mut self.durable {
            Some(d) => {
                d.corrupt(vpage);
                true
            }
            None => false,
        }
    }

    /// Test hook: flip bits in one stripe row's parity content without
    /// updating anything else — latent parity corruption that the
    /// rebuild verify sweep must catch. Returns `false` without a
    /// parity layout.
    pub fn corrupt_parity_row(&mut self, row: u64) -> bool {
        self.ensure_durable_snapshot();
        match &mut self.parity {
            Some(ps) if row < ps.rows() => {
                ps.corrupt_row(row);
                true
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Online rebuild (reconstructing the dead disk onto the hot spare)
    // ------------------------------------------------------------------

    /// Advance the online rebuild, paced in simulated time. Called
    /// opportunistically from the machine's entry points (demand
    /// touches and hint calls), so rebuild traffic contends with
    /// foreground I/O on the survivors. Two bounds throttle the
    /// scrubber:
    ///
    /// * the hot spare physically serializes one row write per average
    ///   access, so the watermark never advances faster than one row
    ///   per `avg_access_ns` of simulated time (stretched 4x under
    ///   elevated pressure — the scrubber yields the spindles);
    /// * the same pressure levels that shed prefetch hints cap the
    ///   per-entry catch-up batch, and brownouts pause it entirely.
    fn pump_rebuild(&mut self) {
        let Some((dead, _)) = self.dead_disk else {
            return;
        };
        if self.parity.is_none() || self.crashed.is_some() {
            return;
        }
        self.ensure_durable_snapshot();
        let (batch, cost_mul) = match self.pressure_level() {
            PressureLevel::Nominal => (8, 1),
            PressureLevel::Elevated => (2, 4),
            PressureLevel::Brownout => (0, 0),
        };
        let row_cost = self.params.disk.avg_access_ns() * cost_mul;
        let rows = self.fs.rows(self.swap).unwrap_or(0);
        let mut done = 0;
        while done < batch
            && self.rebuilt_rows < rows
            && self.crashed.is_none()
            && self.now >= self.rebuild_next_at
        {
            let row = self.rebuilt_rows;
            self.rebuild_row(row, dead);
            self.rebuilt_rows += 1;
            self.rebuild_next_at = self.rebuild_next_at.saturating_add(row_cost);
            done += 1;
        }
        if self.rebuilt_rows >= rows {
            self.finish_rebuild_bookkeeping();
        }
    }

    /// Drive the rebuild to completion regardless of pressure (harness
    /// hook: the workload is done and the scrubber gets the array to
    /// itself). No-op when the array is healthy or power is out.
    pub fn finish_rebuild(&mut self) {
        let Some((dead, _)) = self.dead_disk else {
            return;
        };
        if self.parity.is_none() || self.crashed.is_some() {
            return;
        }
        self.ensure_durable_snapshot();
        let rows = self.fs.rows(self.swap).unwrap_or(0);
        while self.rebuilt_rows < rows && self.crashed.is_none() {
            let row = self.rebuilt_rows;
            self.rebuild_row(row, dead);
            self.rebuilt_rows += 1;
        }
        if self.rebuilt_rows >= rows {
            self.finish_rebuild_bookkeeping();
        }
    }

    fn finish_rebuild_bookkeeping(&mut self) {
        self.stats.rebuild_ns = self.now.saturating_sub(self.death_detected_at);
        self.dead_disk = None;
    }

    /// Reconstruct one stripe row's lost block onto the hot spare:
    /// post one background read per survivor block, verify the
    /// reconstruction against the durable content model's checksums,
    /// and post the write to the spare. A mismatch (latent parity
    /// corruption) is counted and the row's parity re-derived from the
    /// durable data pages, whose per-page checksums are authoritative.
    fn rebuild_row(&mut self, row: u64, dead: usize) {
        let Ok(pages) = self.fs.row_pages(self.swap, row) else {
            return;
        };
        let Ok((pd, pb)) = self.fs.parity_place(self.swap, row) else {
            return;
        };
        // Survivor reads, prefetch class: the foreground's demand
        // reads keep priority over reconstruction traffic.
        let mut lost: Option<u64> = None;
        for p in pages.clone() {
            let Ok((d, b)) = self.fs.place(self.swap, p) else {
                continue;
            };
            if d == dead {
                lost = Some(p);
                continue;
            }
            self.post_background(d, ReqKind::PrefetchRead, b);
        }
        if pd != dead {
            self.post_background(pd, ReqKind::PrefetchRead, pb);
        }
        let page_bytes = self.params.page_bytes as usize;
        if self.parity.is_none() || self.durable.is_none() {
            return;
        }
        // The authoritative parity image of this row: XOR of its
        // durable data pages (each protected by its own checksum).
        let xor = {
            let d = self.durable.as_ref().expect("checked above");
            let mut xor = vec![0u8; page_bytes];
            for p in pages.clone() {
                for (dst, src) in xor.iter_mut().zip(d.page(p)) {
                    *dst ^= src;
                }
            }
            xor
        };
        let mismatch = {
            let ps = self.parity.as_ref().expect("checked above");
            let d = self.durable.as_ref().expect("checked above");
            if pd == dead {
                // The row lost its parity block: verify the content
                // model's row checksum against the recomputation.
                page_checksum(&xor) != ps.row_checksum(row)
            } else if let Some(lp) = lost {
                // The row lost a data page: reconstruct it from the
                // survivors + parity and check it against the page's
                // stored checksum.
                let rec = ps.reconstruct(row, pages.clone(), lp, d.images());
                page_checksum(&rec) != d.stored_checksum(lp)
            } else {
                // Short final row whose dead-slot block holds neither
                // data nor parity: nothing to reconstruct.
                false
            }
        };
        if mismatch {
            self.stats.rebuild_verify_mismatches += 1;
        }
        if mismatch || pd == dead {
            // Adopt the authoritative recomputation as the row's parity
            // content: heals latent corruption, and is the freshly
            // rebuilt parity block when the parity home was the dead
            // slot (a byte-identical no-op when already clean).
            if let Some(ps) = &mut self.parity {
                let cur = ps.row(row).to_vec();
                ps.update(row, &cur, &xor);
            }
        }
        // The write that lands the reconstructed block on the spare.
        let wb = if pd == dead {
            self.stats.parity_writes += 1;
            Some(pb)
        } else {
            lost.and_then(|lp| self.fs.place(self.swap, lp).ok().map(|(_, b)| b))
        };
        if let Some(b) = wb {
            self.post_background(dead, ReqKind::Write, b);
        }
        self.stats.rebuild_rows += 1;
    }

    /// Post one background (non-stalling) request, latching crash or
    /// death signals; queue-full refusals are dropped — background
    /// traffic is timing-only.
    fn post_background(&mut self, disk: usize, kind: ReqKind, block: u64) {
        match self
            .disks
            .try_post(disk, self.now, Request::new(kind, block, 1))
        {
            Ok(()) | Err(IoError::QueueFull { .. }) => {}
            Err(IoError::Crashed { at }) => self.crashed = Some(at),
            Err(IoError::DiskDead { disk: d, at }) => {
                self.note_disk_death(d, at);
            }
            Err(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Backing data (the actual bytes of the address space)
    // ------------------------------------------------------------------

    /// Read an `f64` at `addr` without touching residency (init/verify).
    pub fn peek_f64(&self, addr: u64) -> f64 {
        f64::from_le_bytes(
            self.data[addr as usize..addr as usize + 8]
                .try_into()
                .unwrap(),
        )
    }

    /// Write an `f64` at `addr` without touching residency (init only).
    pub fn poke_f64(&mut self, addr: u64, v: f64) {
        self.data[addr as usize..addr as usize + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read an `i64` at `addr` without touching residency (init/verify).
    pub fn peek_i64(&self, addr: u64) -> i64 {
        i64::from_le_bytes(
            self.data[addr as usize..addr as usize + 8]
                .try_into()
                .unwrap(),
        )
    }

    /// Write an `i64` at `addr` without touching residency (init only).
    pub fn poke_i64(&mut self, addr: u64, v: i64) {
        self.data[addr as usize..addr as usize + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Timed load of an `f64`: touches the page, then reads.
    pub fn load_f64(&mut self, addr: u64) -> f64 {
        self.touch(addr, 8, false);
        self.peek_f64(addr)
    }

    /// Timed store of an `f64`: touches the page for write, then writes.
    pub fn store_f64(&mut self, addr: u64, v: f64) {
        self.touch(addr, 8, true);
        self.poke_f64(addr, v);
    }

    /// Timed load of an `i64`.
    pub fn load_i64(&mut self, addr: u64) -> i64 {
        self.touch(addr, 8, false);
        self.peek_i64(addr)
    }

    /// Timed store of an `i64`.
    pub fn store_i64(&mut self, addr: u64, v: i64) {
        self.touch(addr, 8, true);
        self.poke_i64(addr, v);
    }

    /// Copy of the raw bytes of a segment (result verification).
    pub fn snapshot(&self, seg: Segment) -> Vec<u8> {
        self.data[seg.base as usize..(seg.base + seg.bytes) as usize].to_vec()
    }

    /// Number of frames currently free (unallocated) — test hook.
    pub fn free_frames(&self) -> u64 {
        self.truly_free()
    }

    /// Number of resident pages including the free list — test hook.
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Number of pages with disk reads in flight — test hook.
    pub fn inflight_pages(&self) -> u64 {
        self.inflight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Machine {
        let mut p = MachineParams::small();
        p.resident_limit = 32;
        p.demand_reserve = 2;
        p.low_water = 4;
        p.high_water = 8;
        // 64 pages of address space.
        Machine::new(p, 64 * 4096)
    }

    #[test]
    fn demand_read_retries_through_transient_errors() {
        let mut m = tiny();
        // Every demand read fails 50% of the time: with 6 retries the
        // probability all 64 pages give up is negligible, and retry
        // counters must show the recovery work.
        m.set_fault_plan(&FaultPlan::none(11).with_errors(0.5, 0.0, 0.0));
        for p in 0..64u64 {
            m.store_f64(p * 4096, p as f64);
        }
        let s = m.stats();
        assert!(s.io_errors_observed > 0, "errors were injected");
        assert!(s.io_retries > 0, "retries happened");
        assert!(s.io_retry_wait_ns > 0, "backoff waits charged");
        assert_eq!(m.breakdown().total(), m.now(), "ledger covers retries");
        for p in 0..64u64 {
            assert_eq!(m.peek_f64(p * 4096), p as f64, "data intact");
        }
    }

    #[test]
    fn exhausted_retries_surface_typed_error() {
        let mut p = MachineParams::small();
        p.resident_limit = 32;
        p.demand_reserve = 2;
        p.low_water = 4;
        p.high_water = 8;
        p.io_max_retries = 2;
        let mut m = Machine::new(p, 64 * 4096);
        // Permanent brownout on the whole array: the budget cannot
        // cover it, so the error must surface with context.
        m.set_fault_plan(&FaultPlan::none(3).with_brownout(oocp_disk::Brownout {
            disk: None,
            from: 0,
            until: Ns::MAX,
        }));
        match m.try_touch(0, 8, false) {
            Err(OsError::RetriesExhausted { page, attempts, .. }) => {
                assert_eq!(page, 0);
                assert!(attempts >= 1);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // The failing page is left unmapped; frame accounting intact.
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.breakdown().total(), m.now());
    }

    #[test]
    fn brownout_window_is_waited_out() {
        let mut m = tiny();
        let until = 50 * 1_000_000; // 50 ms, well inside the 2 s budget
        m.set_fault_plan(&FaultPlan::none(5).with_brownout(oocp_disk::Brownout {
            disk: None,
            from: 0,
            until,
        }));
        m.touch(0, 8, false);
        assert!(m.now() >= until, "demand read waited out the brownout");
        assert_eq!(m.stats().hard_faults, 1);
        assert!(m.stats().io_retries >= 1);
    }

    #[test]
    fn failed_prefetch_drops_hint_silently() {
        let mut m = tiny();
        // All prefetch reads fail; demand traffic is untouched.
        m.set_fault_plan(&FaultPlan::none(17).with_errors(0.0, 1.0, 0.0));
        m.sys_prefetch(0, 8);
        let s = m.stats();
        assert_eq!(s.hints_dropped_on_error, 8);
        assert_eq!(s.prefetch_pages_issued, 0, "issues reverted to drops");
        assert_eq!(s.prefetch_pages_dropped, 8);
        assert_eq!(m.inflight_pages(), 0, "no phantom in-flight pages");
        assert_eq!(s.io_retries, 0, "hints are never retried");
        // The data is still reachable by demand faulting.
        m.store_f64(0, 2.5);
        assert_eq!(m.load_f64(0), 2.5);
        // Partition invariant survives the reverts.
        let s = m.stats();
        assert_eq!(
            s.prefetch_pages_requested,
            s.prefetch_pages_issued
                + s.prefetch_pages_unnecessary
                + s.prefetch_pages_reclaimed
                + s.prefetch_pages_inflight
                + s.prefetch_pages_dropped
        );
    }

    #[test]
    fn stale_bits_accumulate_and_resync_fixes_them() {
        let mut m = tiny();
        m.set_fault_plan(&FaultPlan::none(23).with_bitvec_staleness(1.0));
        // Touch then release pages: every release "loses" its bit clear.
        for p in 0..16u64 {
            m.touch(p * 4096, 8, false);
        }
        m.sys_release(0, 16);
        let s = m.stats();
        assert!(s.bitvec_stale_injected > 0, "desync was injected");
        // The vector still claims residency for released pages.
        assert!(m.bits().test(0), "stale bit visible before resync");
        let fixed = m.resync_bits();
        assert!(fixed > 0, "resync found stale bits");
        assert!(!m.bits().test(0), "resync cleared the stale bit");
        assert_eq!(m.stats().bitvec_resyncs, 1);
        // A second resync finds nothing.
        assert_eq!(m.resync_bits(), 0);
    }

    #[test]
    fn same_seed_fault_runs_are_identical() {
        let run = || {
            let mut m = tiny();
            m.set_fault_plan(
                &FaultPlan::none(99)
                    .with_errors(0.2, 0.2, 0.2)
                    .with_stragglers(0.2, 4.0, 1_000_000),
            );
            for p in 0..64u64 {
                m.store_f64(p * 4096, p as f64);
            }
            m.sys_prefetch(0, 32);
            m.finish();
            (
                m.now(),
                m.stats().io_errors_observed,
                m.stats().io_retries,
                m.stats().hints_dropped_on_error,
                m.disk_stats().faults_injected,
                m.disk_stats().stragglers_injected,
            )
        };
        let a = run();
        assert!(a.1 > 0 || a.4 > 0, "plan actually injected something");
        assert_eq!(a, run(), "same seed, same everything");
    }

    #[test]
    fn fresh_touch_hard_faults_and_stalls() {
        let mut m = tiny();
        assert_eq!(m.touch(0, 8, false), 1);
        let b = m.breakdown();
        assert_eq!(m.stats().hard_faults, 1);
        assert_eq!(m.stats().non_prefetched_faults, 1);
        assert!(b.sys_fault > 0, "fault overhead charged");
        assert!(b.idle > 0, "disk wait charged as idle");
        // Second touch of the same page is free.
        let before = m.now();
        assert_eq!(m.touch(0, 8, false), 0);
        assert_eq!(m.now(), before);
    }

    #[test]
    fn touch_spanning_pages_faults_each() {
        let mut m = tiny();
        let faults = m.touch(4096 - 4, 8, false);
        assert_eq!(faults, 2);
        assert_eq!(m.stats().hard_faults, 2);
    }

    #[test]
    fn prefetch_then_touch_is_a_hit() {
        let mut m = tiny();
        m.sys_prefetch(0, 1);
        assert_eq!(m.stats().prefetch_pages_issued, 1);
        assert_eq!(m.inflight_pages(), 1);
        // Give the disk time to complete by doing unrelated computation.
        m.tick_user(10 * oocp_sim::time::SECOND);
        assert_eq!(m.touch(0, 8, false), 0, "no fault after prefetch lands");
        assert_eq!(m.stats().prefetched_hits, 1);
        assert_eq!(m.stats().hard_faults, 0);
        assert_eq!(m.stats().original_faults(), 1);
    }

    #[test]
    fn late_prefetch_stalls_for_residual_only() {
        let mut m = tiny();
        // Demand-fault a reference page to measure the full latency.
        let t0 = m.now();
        m.touch(4096 * 10, 8, false);
        let full_fault = m.now() - t0;

        m.sys_prefetch(0, 1);
        // Touch immediately: the page is in flight, so we stall for the
        // residual, which must be less than a full demand fault's stall.
        let t1 = m.now();
        m.touch(0, 8, false);
        let partial = m.now() - t1;
        assert_eq!(m.stats().prefetched_faults_inflight, 1);
        assert!(m.stats().late_prefetch_stall_ns > 0);
        assert!(
            partial < full_fault,
            "residual stall {partial} should undercut full fault {full_fault}"
        );
    }

    #[test]
    fn unnecessary_prefetch_detected() {
        let mut m = tiny();
        m.touch(0, 8, false);
        m.sys_prefetch(0, 1);
        assert_eq!(m.stats().prefetch_pages_unnecessary, 1);
        assert_eq!(m.stats().prefetch_pages_issued, 0);
    }

    #[test]
    fn prefetch_of_inflight_page_not_reissued() {
        let mut m = tiny();
        m.sys_prefetch(0, 1);
        m.sys_prefetch(0, 1);
        assert_eq!(m.stats().prefetch_pages_issued, 1);
        assert_eq!(m.stats().prefetch_pages_inflight, 1);
    }

    #[test]
    fn release_moves_page_to_free_list_and_prefetch_reclaims() {
        let mut m = tiny();
        m.touch(0, 8, false);
        m.sys_release(0, 1);
        assert_eq!(m.stats().release_pages_effective, 1);
        assert!(!m.bits().test(0), "released page cleared in bit vector");
        // Prefetching it back reclaims without disk I/O.
        m.sys_prefetch(0, 1);
        assert_eq!(m.stats().prefetch_pages_reclaimed, 1);
        assert_eq!(m.stats().prefetch_pages_issued, 0);
        assert!(m.bits().test(0));
    }

    #[test]
    fn touch_of_released_page_is_soft_fault() {
        let mut m = tiny();
        m.touch(0, 8, false);
        let hard_before = m.stats().hard_faults;
        m.sys_release(0, 1);
        m.touch(0, 8, false);
        assert_eq!(m.stats().soft_faults, 1);
        assert_eq!(m.stats().hard_faults, hard_before, "no new hard fault");
    }

    #[test]
    fn release_of_dirty_page_writes_back() {
        let mut m = tiny();
        m.store_f64(0, 1.25);
        m.sys_release(0, 1);
        assert_eq!(m.stats().writebacks, 1);
        assert_eq!(m.disk_stats().writes, 1);
        // Data survives release + re-touch (non-binding semantics).
        assert_eq!(m.load_f64(0), 1.25);
    }

    #[test]
    fn prefetch_dropped_when_memory_full() {
        let mut m = tiny(); // 32 frames, reserve 2
                            // Fill memory with demand touches (they may push some pages to
                            // the free list via the daemon; consume the free list too).
        for p in 0..32 {
            m.touch(p * 4096, 8, true);
        }
        // Re-touch everything to set referenced bits, making eviction
        // reluctant, then prefetch far ahead until drops occur.
        for p in 0..32 {
            m.touch(p * 4096, 8, false);
        }
        m.sys_prefetch(40, 20);
        assert!(
            m.stats().prefetch_pages_dropped > 0,
            "prefetch into full memory must drop: {:?}",
            m.stats()
        );
    }

    #[test]
    fn dropped_prefetch_still_counts_as_prefetched_fault() {
        let mut m = tiny();
        for p in 0..32 {
            m.touch(p * 4096, 8, false);
        }
        for p in 0..32 {
            m.touch(p * 4096, 8, false);
        }
        m.sys_prefetch(40, 20);
        let dropped = m.stats().prefetch_pages_dropped;
        assert!(dropped > 0);
        // Touch the dropped pages: at least one must classify as a
        // prefetched fault (prefetched but dropped before use).
        let mut found = false;
        for vp in 40..60 {
            let lost_before = m.stats().prefetched_faults_lost;
            m.touch(vp * 4096, 8, false);
            if m.stats().prefetched_faults_lost > lost_before {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "a dropped-then-touched page must classify as prefetched fault"
        );
    }

    #[test]
    fn block_prefetch_engages_multiple_disks() {
        let mut m = tiny(); // 7 disks
        m.sys_prefetch(0, 4);
        let s = m.disk_stats();
        assert_eq!(s.prefetch_reads, 4, "4 consecutive pages on 4 disks");
        assert_eq!(s.prefetch_blocks, 4);
        // All four arrive roughly in parallel: wait and touch all with
        // no hard faults.
        m.tick_user(10 * oocp_sim::time::SECOND);
        for p in 0..4 {
            assert_eq!(m.touch(p * 4096, 8, false), 0);
        }
        assert_eq!(m.stats().prefetched_hits, 4);
    }

    #[test]
    fn eviction_cycle_with_small_memory() {
        let mut m = tiny(); // 32 frames, 64 pages
                            // Stream through all 64 pages twice; must not panic and must
                            // evict.
        for round in 0..2 {
            for p in 0..64 {
                m.touch(p * 4096, 8, true);
            }
            let _ = round;
        }
        assert!(m.stats().daemon_evictions > 0);
        assert!(m.resident_pages() <= 32);
        // Second round re-faults pages evicted in the first.
        assert!(m.stats().hard_faults > 64);
    }

    #[test]
    fn time_breakdown_partitions_makespan() {
        let mut m = tiny();
        for p in 0..64 {
            m.touch(p * 4096, 8, true);
            m.tick_user(5_000);
        }
        m.sys_prefetch(0, 4);
        m.finish();
        assert_eq!(m.breakdown().total(), m.now());
    }

    #[test]
    fn finish_flushes_dirty_pages() {
        let mut m = tiny();
        m.store_f64(0, 3.0);
        m.store_f64(4096, 4.0);
        m.finish();
        assert!(m.disk_stats().writes >= 2);
        assert_eq!(m.peek_f64(0), 3.0);
    }

    #[test]
    fn preload_makes_pages_resident_for_free() {
        let mut m = tiny();
        m.preload(0, 8);
        assert_eq!(m.now(), 0);
        for p in 0..8 {
            assert_eq!(m.touch(p * 4096, 8, false), 0);
        }
        assert_eq!(m.stats().hard_faults, 0);
    }

    #[test]
    #[should_panic(expected = "preload exceeds resident limit")]
    fn preload_beyond_memory_rejected() {
        let mut m = tiny();
        m.preload(0, 64);
    }

    #[test]
    fn segments_are_page_aligned_and_disjoint() {
        let mut m = tiny();
        let a = m.alloc_segment(100);
        let b = m.alloc_segment(5000);
        assert_eq!(a.base % 4096, 0);
        assert_eq!(b.base % 4096, 0);
        assert_eq!(a.bytes, 4096);
        assert_eq!(b.bytes, 8192);
        assert!(a.base + a.bytes <= b.base);
    }

    #[test]
    fn data_roundtrip_through_paging() {
        let mut m = tiny();
        // Write all 64 pages (forcing evictions), then read back.
        for i in 0..64u64 {
            m.store_f64(i * 4096 + 16, i as f64 * 1.5);
        }
        for i in 0..64u64 {
            assert_eq!(m.load_f64(i * 4096 + 16), i as f64 * 1.5);
        }
    }

    #[test]
    fn bundled_prefetch_release_is_one_syscall() {
        let mut m = tiny();
        m.touch(0, 8, false);
        m.sys_prefetch_release(1, 2, 0, 1);
        assert_eq!(m.stats().hint_syscalls, 1);
        assert_eq!(m.stats().release_pages_effective, 1);
        assert_eq!(m.stats().prefetch_pages_issued, 2);
    }

    #[test]
    fn out_of_range_hints_are_clamped_not_fatal() {
        let mut m = tiny(); // 64 pages
        m.sys_prefetch(60, 100);
        m.sys_release(200, 5);
        assert!(m.stats().prefetch_pages_requested <= 64);
    }

    #[test]
    fn shrinking_limit_evicts_down_to_it() {
        let mut m = tiny(); // 32 frames
        for p in 0..30 {
            m.touch(p * 4096, 8, false);
        }
        assert!(m.resident_pages() >= 24);
        m.set_resident_limit(16);
        assert!(
            m.resident_pages() + m.inflight_pages() <= 16,
            "resident {} after shrink",
            m.resident_pages()
        );
        // Growing back allows refilling.
        m.set_resident_limit(32);
        for p in 0..30 {
            m.touch(p * 4096, 8, false);
        }
        assert!(m.resident_pages() <= 32);
    }

    #[test]
    fn shrink_floor_respects_watermarks() {
        let mut m = tiny(); // high_water 8, reserve 2
        m.set_resident_limit(1);
        // Clamped to high_water + reserve + 2 = 12.
        assert_eq!(m.params().resident_limit, 12);
    }

    #[test]
    fn pressure_schedule_applies_with_time() {
        let mut m = tiny();
        for p in 0..30 {
            m.touch(p * 4096, 8, false);
        }
        let t = m.now();
        m.set_pressure_schedule(vec![(t + 1_000_000, 16), (t + 2_000_000, 32)]);
        assert_eq!(m.params().resident_limit, 32, "future entries inert");
        m.tick_user(1_500_000);
        m.touch(0, 8, false); // ops apply due entries
        assert_eq!(m.params().resident_limit, 16);
        m.tick_user(1_000_000);
        m.touch(0, 8, false);
        assert_eq!(m.params().resident_limit, 32);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_pressure_schedule_rejected() {
        let mut m = tiny();
        m.set_pressure_schedule(vec![(100, 16), (50, 32)]);
    }

    #[test]
    fn data_survives_pressure_oscillation() {
        let mut m = tiny();
        for i in 0..64u64 {
            m.store_f64(i * 4096, i as f64);
        }
        m.set_resident_limit(12);
        m.set_resident_limit(32);
        for i in 0..64u64 {
            assert_eq!(m.load_f64(i * 4096), i as f64);
        }
    }

    #[test]
    fn trace_records_paging_activity_in_order() {
        let mut m = tiny();
        m.enable_trace(1024);
        m.touch(0, 8, true); // hard fault
        m.sys_prefetch(1, 2); // prefetch issue
        m.sys_release(0, 1); // release (+ writeback: page 0 is dirty)
        m.tick_user(oocp_sim::time::SECOND);
        m.touch(4096, 8, false); // arrival -> hit, no event
        let trace = m.take_trace().expect("tracing enabled");
        let recs = trace.records();
        let tags: Vec<&str> = recs.iter().map(|r| r.event.tag()).collect();
        assert!(tags.contains(&"FAULT"));
        assert!(tags.contains(&"PF"));
        assert!(tags.contains(&"REL"));
        assert!(tags.contains(&"WB"));
        // Chronological order.
        assert!(recs.windows(2).all(|w| w[0].at <= w[1].at));
        // take_trace resets but keeps tracing (page 10 was never
        // prefetched, so this is a fresh hard fault).
        m.touch(10 * 4096, 8, false);
        let t2 = m.take_trace().expect("still tracing");
        assert!(t2.records().iter().any(|r| r.event.tag() == "FAULT"));
    }

    #[test]
    fn ledger_partitions_every_prefetch_outcome() {
        let mut m = tiny();
        m.enable_metrics();
        // Timely hit: prefetch, wait, touch.
        m.sys_prefetch(0, 1);
        m.tick_user(10 * oocp_sim::time::SECOND);
        m.touch(0, 8, false);
        // Late in-flight: prefetch and touch immediately.
        m.sys_prefetch(1, 1);
        m.touch(4096, 8, false);
        let r = m.metrics_report().expect("metrics enabled");
        assert_eq!(r.ledger.timely_hits, 1);
        assert_eq!(r.ledger.late_inflight, 1);
        assert!(r.partition_ok());
        assert_eq!(r.lead_time.count(), 2, "both reads have lead times");
        assert_eq!(r.arrival_to_use.count(), 2);
        assert_eq!(r.fault_wait.count(), 1, "only the late touch stalled");
        m.finish();
        let r = m.metrics_report().unwrap();
        assert_eq!(r.ledger_open, 0, "finish closes every entry");
        assert!(r.partition_ok());
    }

    #[test]
    fn ledger_counts_drops_and_finalizes_unused() {
        let mut m = tiny();
        m.enable_metrics();
        for p in 0..32 {
            m.touch(p * 4096, 8, false);
        }
        for p in 0..32 {
            m.touch(p * 4096, 8, false);
        }
        m.sys_prefetch(40, 20); // memory full: some drop
        let r = m.metrics_report().unwrap();
        assert!(r.ledger.dropped_no_memory > 0);
        assert_eq!(
            r.ledger.dropped_no_memory,
            m.stats().prefetch_pages_dropped,
            "ledger and OsStats agree on drops"
        );
        m.finish();
        let r = m.metrics_report().unwrap();
        assert!(r.partition_ok());
        assert_eq!(
            r.ledger_entries,
            m.stats().prefetch_pages_issued + m.stats().prefetch_pages_dropped,
            "every issue decision opened exactly one entry"
        );
    }

    #[test]
    fn ledger_closes_error_dropped_hints() {
        let mut m = tiny();
        m.enable_metrics();
        m.set_fault_plan(&FaultPlan::none(17).with_errors(0.0, 1.0, 0.0));
        m.sys_prefetch(0, 8);
        m.finish();
        let r = m.metrics_report().unwrap();
        assert_eq!(r.ledger.dropped_io_error, 8);
        assert!(r.partition_ok());
    }

    #[test]
    fn attribution_partitions_elapsed_exactly() {
        let mut m = tiny();
        for p in 0..64 {
            m.touch(p * 4096, 8, true);
            m.tick_user(5_000);
        }
        m.sys_prefetch(0, 4);
        m.touch(0, 8, false); // may stall on the in-flight prefetch
        m.finish();
        let a = m.attribution();
        assert_eq!(a.total(), m.now(), "buckets sum to elapsed exactly");
        assert!(a.sums_to(m.breakdown().total(), 0.0));
        assert!(a.compute_ns > 0 && a.demand_stall_ns > 0);
    }

    #[test]
    fn metrics_are_timing_neutral() {
        let run = |metrics: bool| {
            let mut m = tiny();
            if metrics {
                m.enable_metrics();
            }
            m.set_fault_plan(&FaultPlan::none(7).with_errors(0.1, 0.1, 0.0));
            for p in 0..64u64 {
                m.store_f64(p * 4096, p as f64);
            }
            m.sys_prefetch(0, 16);
            m.sys_release(0, 8);
            m.touch(0, 8, false);
            m.finish();
            let d = m.disk_stats();
            (
                m.now(),
                m.stats().hard_faults,
                d.demand_reads + d.prefetch_reads + d.writes,
            )
        };
        assert_eq!(run(false), run(true), "metrics never perturb timing");
    }

    #[test]
    fn prefetch_trace_spans_correlate_issue_arrive_consume() {
        let mut m = tiny();
        m.enable_trace(1024);
        m.sys_prefetch(0, 2);
        m.tick_user(10 * oocp_sim::time::SECOND);
        m.touch(0, 8, false);
        m.touch(4096, 8, false);
        let trace = m.take_trace().unwrap();
        let mut issued = Vec::new();
        let mut arrived = Vec::new();
        let mut consumed = Vec::new();
        for r in trace.iter() {
            match r.event {
                TraceEvent::PrefetchIssue { span, count, .. } => issued.extend(span..span + count),
                TraceEvent::PrefetchArrive { span, arrival, .. } => {
                    assert!(arrival <= r.at, "arrival observed at or after completion");
                    arrived.push(span)
                }
                TraceEvent::PrefetchConsume { span, late, .. } => {
                    assert!(!late);
                    consumed.push(span)
                }
                _ => {}
            }
        }
        issued.sort_unstable();
        arrived.sort_unstable();
        consumed.sort_unstable();
        assert_eq!(issued, vec![1, 2]);
        assert_eq!(arrived, issued, "every span arrives");
        assert_eq!(consumed, issued, "every span is consumed");
    }

    #[test]
    fn avg_free_frames_decreases_as_memory_fills() {
        let mut m = tiny();
        let initial = m.avg_free_frames();
        for p in 0..32 {
            m.touch(p * 4096, 8, false);
        }
        m.tick_user(oocp_sim::time::SECOND);
        m.note_free_level();
        assert!(m.avg_free_frames() < initial.max(32.0));
    }

    // ------------------------------------------------------------------
    // Crash consistency
    // ------------------------------------------------------------------

    use oocp_disk::{CrashPoint, CrashSpec};

    fn crash_plan(seed: u64, point: CrashPoint, torn: bool) -> FaultPlan {
        FaultPlan::none(seed).with_crash(CrashSpec {
            point,
            torn_writes: torn,
        })
    }

    #[test]
    fn crash_latches_and_the_zombie_run_completes() {
        let mut m = tiny();
        m.set_fault_plan(&crash_plan(5, CrashPoint::AtOp(10), false));
        for p in 0..64u64 {
            m.store_f64(p * 4096, p as f64);
        }
        assert!(m.crashed_at().is_some(), "the 10th disk op tripped it");
        for p in 0..64u64 {
            assert_eq!(m.peek_f64(p * 4096), p as f64, "zombie served store {p}");
        }
        let err = m.try_finish().unwrap_err();
        assert!(!err.vpages.is_empty(), "dirty pages were cut off");
        assert!(
            err.vpages.windows(2).all(|w| w[0] < w[1]),
            "sorted and deduplicated"
        );
        // Idempotent: a second call reports the same verdict.
        assert_eq!(m.try_finish().unwrap_err(), err);
    }

    #[test]
    fn crash_during_prefetch_submission_drops_the_hint_and_latches() {
        let mut m = tiny();
        m.set_fault_plan(&crash_plan(6, CrashPoint::AtOp(2), false));
        m.touch(0, 8, false); // op 1
        m.sys_prefetch(8, 4); // one of these submissions trips the crash
        assert!(m.crashed_at().is_some());
        // Zombie mode: everything still "works", data intact.
        for p in 0..16u64 {
            m.store_f64(p * 4096, 3.0 * p as f64);
        }
        for p in 0..16u64 {
            assert_eq!(m.peek_f64(p * 4096), 3.0 * p as f64);
        }
    }

    #[test]
    fn recovery_after_torn_crash_is_exact_with_the_journal() {
        let mut m = tiny();
        // Op 100 lands among the eviction writebacks, so WAL records
        // are genuinely in flight when the power dies.
        m.set_fault_plan(&crash_plan(7, CrashPoint::AtOp(100), true));
        for p in 0..64u64 {
            m.store_f64(p * 4096, 100.0 + p as f64);
        }
        m.finish();
        let (m2, report) = m.recover();
        assert!(report.crashed_at > 0);
        assert_eq!(
            report.unrecoverable, 0,
            "the journal makes every page recoverable: {report:?}"
        );
        for p in 0..64u64 {
            let v = m2.peek_f64(p * 4096);
            assert!(
                v == 0.0 || v == 100.0 + p as f64,
                "page {p} must hold its old or new image, got {v}"
            );
        }
        assert_eq!(m2.stats().recovery_pages_replayed, report.pages_replayed);
        assert_eq!(m2.stats().recovery_pages_discarded, report.pages_discarded);
        assert_eq!(m2.stats().recovery_ns, report.recovery_ns);
        assert!(m2.now() > 0, "recovery consumed simulated time");
        assert!(m2.crashed_at().is_none(), "the recovered machine is clean");
        assert!(m2.durability_enabled());
    }

    #[test]
    fn recovery_of_an_uncrashed_machine_is_a_no_op() {
        let mut m = tiny();
        m.store_f64(0, 4.5);
        let (m2, report) = m.recover();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(m2.peek_f64(0), 4.5);
    }

    #[test]
    fn torn_writes_without_a_journal_lose_data() {
        let mut p = MachineParams::small();
        p.resident_limit = 32;
        p.demand_reserve = 2;
        p.low_water = 4;
        p.high_water = 8;
        p.journal = false;
        let mut m = Machine::new(p, 64 * 4096);
        m.set_fault_plan(&crash_plan(21, CrashPoint::AtOp(100), true));
        for page in 0..64u64 {
            m.store_f64(page * 4096, 7.0 + page as f64);
        }
        m.finish();
        let (_, report) = m.recover();
        assert!(report.torn_detected > 0, "a torn home block was found");
        assert!(
            report.unrecoverable > 0,
            "without WAL there is no payload to repair from: {report:?}"
        );
        assert_eq!(
            report.unrecoverable_pages.len() as u64,
            report.unrecoverable
        );
    }

    #[test]
    fn full_journal_ring_stalls_and_retires_in_order() {
        let mut p = MachineParams::small();
        p.resident_limit = 32;
        p.demand_reserve = 2;
        p.low_water = 4;
        p.high_water = 8;
        p.journal_blocks_per_disk = 2; // one record slot per disk
        let mut m = Machine::new(p, 64 * 4096);
        // Durability mode with a crash point that never trips.
        m.set_fault_plan(&crash_plan(3, CrashPoint::AtOp(u64::MAX), false));
        for page in 0..64u64 {
            m.store_f64(page * 4096, page as f64);
        }
        m.try_finish().expect("no crash fires, everything flushes");
        let s = *m.stats();
        assert!(s.journal_appends > 0);
        assert!(s.journal_stalls > 0, "1-slot rings must force retirement");
    }

    #[test]
    fn crash_at_time_zero_discards_everything_but_recovers_the_baseline() {
        let mut m = tiny();
        m.set_fault_plan(&crash_plan(13, CrashPoint::AtTime(0), false));
        for p in 0..8u64 {
            m.store_f64(p * 4096, 9.0);
        }
        assert_eq!(m.crashed_at(), Some(0));
        m.finish();
        let (m2, report) = m.recover();
        assert_eq!(report.unrecoverable, 0);
        for p in 0..8u64 {
            assert_eq!(m2.peek_f64(p * 4096), 0.0, "baseline image restored");
        }
    }

    #[test]
    fn scrubber_detects_and_repairs_latent_corruption() {
        let mut m = tiny();
        m.set_fault_plan(&crash_plan(9, CrashPoint::AtOp(u64::MAX), false));
        for page in 0..64u64 {
            m.store_f64(page * 4096, page as f64);
        }
        m.try_finish().expect("clean durable run");
        for page in 0..64u64 {
            assert!(m.corrupt_durable_page(page));
        }
        let (verified, repaired) = m.scrub(u64::MAX);
        assert!(verified > 0, "cold pages were verified");
        assert!(repaired > 0, "journal state repaired corrupt pages");
        assert_eq!(m.stats().scrub_pages_verified, verified);
        assert_eq!(m.stats().scrub_pages_repaired, repaired);
    }

    #[test]
    fn pressure_storm_from_edge_is_inclusive_and_zero_length_nets_out() {
        // A storm whose window is [from, until): the limit lands at
        // `from` itself (inclusive) ...
        let mut m = tiny();
        m.set_fault_plan(
            &FaultPlan::none(1).with_pressure_storm(oocp_disk::PressureStorm {
                from: 0,
                until: Ns::MAX,
                limit_frames: 16,
            }),
        );
        assert_eq!(m.params().resident_limit, 16, "limit applies at t == from");
        // ... and a zero-length storm nets out to the restore (the
        // restore entry is sorted stably after the limit entry).
        let mut m2 = tiny();
        m2.set_fault_plan(
            &FaultPlan::none(1).with_pressure_storm(oocp_disk::PressureStorm {
                from: 0,
                until: 0,
                limit_frames: 16,
            }),
        );
        assert_eq!(
            m2.params().resident_limit,
            32,
            "zero-length storm has no lasting effect"
        );
    }

    #[test]
    fn pressure_storm_restores_at_until() {
        let mut m = tiny();
        m.set_fault_plan(
            &FaultPlan::none(1).with_pressure_storm(oocp_disk::PressureStorm {
                from: 500,
                until: 1000,
                limit_frames: 16,
            }),
        );
        assert_eq!(m.params().resident_limit, 32, "before the storm");
        m.tick_user(500); // now == from: inclusive edge
        m.touch(0, 8, false);
        assert_eq!(m.params().resident_limit, 16, "inside the window");
        // The fault above pushed `now` far past `until`; the next
        // hint/touch applies the restore entry.
        m.touch(4096, 8, false);
        assert_eq!(m.params().resident_limit, 32, "restored at t >= until");
    }

    // --------------------------------------------------------------
    // Multi-tenant machine
    // --------------------------------------------------------------

    /// A tiny machine with one 16-page tenant per spec.
    fn multi(specs: &[TenantSpec]) -> (Machine, Vec<Segment>) {
        let mut m = tiny();
        let segs = specs
            .iter()
            .map(|s| m.register_tenant(*s, 16 * 4096).1)
            .collect();
        (m, segs)
    }

    #[test]
    fn tenant_registration_partitions_the_address_space() {
        let (m, segs) = multi(&[
            TenantSpec::unlimited(),
            TenantSpec::unlimited().with_qos(QosClass::BestEffort),
        ]);
        assert_eq!(m.tenant_count(), 2);
        assert_eq!(segs[0].base, 0);
        assert_eq!(segs[1].base, segs[0].bytes, "segments are disjoint");
        assert_eq!(m.cur_tenant(), 0);
        assert_eq!(m.tenant_spec(0).qos, QosClass::Guaranteed);
        assert_eq!(m.tenant_spec(1).qos, QosClass::BestEffort);
        // Out-of-range lookups read as the implicit unlimited tenant.
        assert_eq!(m.tenant_spec(9).memory_frames, None);
    }

    #[test]
    fn tenant_residency_bits_are_private() {
        let (mut m, segs) = multi(&[TenantSpec::unlimited(), TenantSpec::unlimited()]);
        m.set_tenant(0);
        m.touch(segs[0].base, 8, true);
        m.set_tenant(1);
        m.touch(segs[1].base, 8, true);
        let p0 = segs[0].base / 4096;
        let p1 = segs[1].base / 4096;
        assert!(m.tenant_bits_of(0).test(p0));
        assert!(!m.tenant_bits_of(0).test(p1), "t0 never sees t1's pages");
        assert!(m.tenant_bits_of(1).test(p1));
        assert!(!m.tenant_bits_of(1).test(p0), "t1 never sees t0's pages");
        // The shared vector still sees both.
        assert!(m.bits().test(p0) && m.bits().test(p1));
    }

    #[test]
    fn prefetch_slot_quota_drops_excess_hints() {
        let (mut m, segs) = multi(&[
            TenantSpec::unlimited().with_prefetch_slots(2),
            TenantSpec::unlimited(),
        ]);
        m.set_tenant(0);
        m.sys_prefetch(segs[0].base / 4096, 8);
        let s = m.stats();
        assert_eq!(s.prefetch_pages_issued, 2, "quota admits two in flight");
        assert_eq!(s.hints_dropped_quota, 6, "the rest drop with reason quota");
        assert_eq!(s.hints_dropped_pressure, 0);
        let ts = m.tenant_stats(0);
        assert_eq!(ts.hints_dropped_quota, 6);
        assert_eq!(ts.inflight_prefetch, 2);
        assert_eq!(m.tenant_stats(1).hints_dropped_quota, 0);
        // Partition invariant survives the quota path.
        assert_eq!(
            s.prefetch_pages_requested,
            s.prefetch_pages_issued
                + s.prefetch_pages_unnecessary
                + s.prefetch_pages_reclaimed
                + s.prefetch_pages_inflight
                + s.prefetch_pages_dropped
        );
    }

    #[test]
    fn brownout_sheds_non_guaranteed_hints_only() {
        let (mut m, segs) = multi(&[
            TenantSpec::unlimited(),
            TenantSpec::unlimited().with_qos(QosClass::BestEffort),
        ]);
        // The guaranteed tenant saturates memory with in-flight
        // prefetches: the pool drains to the demand reserve (2), under
        // the low watermark (4) -- a brownout.
        m.set_tenant(0);
        m.sys_prefetch(segs[0].base / 4096, 16);
        m.sys_prefetch(32, 14); // overflow into unowned address space
        assert_eq!(m.pressure_level(), PressureLevel::Brownout);
        // A best-effort hint is shed before touching memory at all.
        m.set_tenant(1);
        let before = *m.stats();
        m.sys_prefetch(segs[1].base / 4096, 4);
        let s = m.stats();
        assert_eq!(s.hints_dropped_pressure - before.hints_dropped_pressure, 4);
        assert_eq!(m.tenant_stats(1).hints_dropped_pressure, 4);
        assert_eq!(m.tenant_stats(1).inflight_prefetch, 0, "nothing issued");
        // A guaranteed hint is never shed: it falls through to the
        // ordinary no-memory drop instead.
        m.set_tenant(0);
        let before = *m.stats();
        m.sys_prefetch(segs[0].base / 4096, 16);
        let s = m.stats();
        assert_eq!(
            s.hints_dropped_pressure, before.hints_dropped_pressure,
            "guaranteed hints are not shed"
        );
        assert_eq!(s.hints_dropped_quota, before.hints_dropped_quota);
    }

    #[test]
    fn memory_quota_tenant_recycles_its_own_frames() {
        let (mut m, segs) = multi(&[
            TenantSpec::unlimited().with_memory_frames(4),
            TenantSpec::unlimited(),
        ]);
        // The unlimited tenant fills its working set first.
        m.set_tenant(1);
        for p in 0..16u64 {
            m.store_f64(segs[1].base + p * 4096, p as f64);
        }
        assert_eq!(m.tenant_usage(1), 16);
        // The quota'd tenant walks its whole segment: every fault past
        // the quota recycles one of its *own* frames.
        m.set_tenant(0);
        for p in 0..16u64 {
            m.store_f64(segs[0].base + p * 4096, p as f64);
            assert!(m.tenant_usage(0) <= 4, "usage capped at the quota");
        }
        assert!(m.tenant_stats(0).quota_evictions >= 12);
        assert_eq!(m.tenant_usage(1), 16, "the neighbour lost nothing");
        for p in 0..16u64 {
            assert_eq!(m.peek_f64(segs[1].base + p * 4096), p as f64);
            assert_eq!(m.peek_f64(segs[0].base + p * 4096), p as f64);
        }
    }

    #[test]
    fn quota_of_one_frame_still_terminates() {
        let (mut m, segs) = multi(&[TenantSpec::unlimited().with_memory_frames(0)]);
        // Even a zero quota is clamped to one frame: progress, not
        // livelock, one fault per touch.
        m.set_tenant(0);
        for p in 0..16u64 {
            m.store_f64(segs[0].base + p * 4096, p as f64);
        }
        for p in 0..16u64 {
            assert_eq!(m.peek_f64(segs[0].base + p * 4096), p as f64);
        }
        assert!(m.tenant_stats(0).quota_evictions >= 15);
    }

    #[test]
    fn touch_nb_blocked_then_idle_matches_blocking_touch() {
        // The hub's non-blocking demand path must account identically
        // to the classic blocking path when driven solo.
        let mut a = tiny();
        let mut b = tiny();
        let drive = |m: &mut Machine, addr: u64, write: bool| loop {
            match m.touch_nb(addr, 8, write).unwrap() {
                Touch::Done { .. } => break,
                Touch::Blocked { until } => m.advance_idle_to(until),
            }
        };
        a.sys_prefetch(0, 8);
        b.sys_prefetch(0, 8);
        for p in 0..24u64 {
            a.touch(p * 4096, 8, p % 2 == 0);
            drive(&mut b, p * 4096, p % 2 == 0);
        }
        assert_eq!(a.now(), b.now(), "clocks agree");
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.hard_faults, sb.hard_faults);
        assert_eq!(sa.prefetched_hits, sb.prefetched_hits);
        assert_eq!(sa.prefetched_faults_inflight, sb.prefetched_faults_inflight);
        assert_eq!(sa.late_prefetch_stall_ns, sb.late_prefetch_stall_ns);
        assert_eq!(a.breakdown(), b.breakdown(), "attribution identical");
    }

    // ------------------------------------------------------------------
    // Redundancy: rotating parity, degraded reads, online rebuild
    // ------------------------------------------------------------------

    fn tiny_parity() -> Machine {
        let mut p = MachineParams::small();
        p.resident_limit = 32;
        p.demand_reserve = 2;
        p.low_water = 4;
        p.high_water = 8;
        p.redundancy = Redundancy::Parity;
        Machine::new(p, 64 * 4096)
    }

    /// Write then fully re-read the address space through the paging
    /// paths, round-tripping every byte.
    fn exercise(m: &mut Machine) {
        for p in 0..64u64 {
            m.store_f64(p * 4096, p as f64 + 0.25);
        }
        m.sys_prefetch(0, 16);
        for p in 0..64u64 {
            assert_eq!(m.load_f64(p * 4096), p as f64 + 0.25, "page {p} intact");
        }
    }

    #[test]
    fn parity_mode_without_faults_roundtrips() {
        let mut m = tiny_parity();
        exercise(&mut m);
        assert!(m.try_finish().is_ok());
        assert_eq!(m.stats().degraded_reads, 0);
        assert_eq!(m.breakdown().total(), m.now());
    }

    #[test]
    fn disk_death_with_parity_serves_degraded_and_rebuilds() {
        let mut m = tiny_parity();
        m.set_fault_plan(
            &FaultPlan::none(7).with_disk_death(oocp_disk::DiskDeath { disk: 1, at: 1 }),
        );
        exercise(&mut m);
        let s = m.stats();
        assert!(s.degraded_reads > 0, "dead-disk pages were reconstructed");
        assert!(s.degraded_read_ns > 0, "reconstruction cost real time");
        assert!(s.rebuild_rows > 0, "the online rebuild made progress");
        m.finish_rebuild();
        assert!(!m.degraded_active(), "rebuild completed");
        let (done, total) = m.rebuild_progress();
        assert_eq!(done, total);
        assert_eq!(m.stats().rebuild_verify_mismatches, 0, "clean verify");
        // Data still bit-exact after losing a whole disk.
        for p in 0..64u64 {
            assert_eq!(m.peek_f64(p * 4096), p as f64 + 0.25);
        }
        assert!(m.try_finish().is_ok());
        assert_eq!(m.breakdown().total(), m.now());
    }

    #[test]
    fn disk_death_without_redundancy_surfaces_typed_loss() {
        let mut m = tiny();
        m.set_fault_plan(
            &FaultPlan::none(7).with_disk_death(oocp_disk::DiskDeath { disk: 1, at: 1 }),
        );
        for p in 0..64u64 {
            m.poke_f64(p * 4096, 1.0);
        }
        let mut lost = None;
        for p in 0..64u64 {
            if let Err(e) = m.try_touch(p * 4096, 8, false) {
                lost = Some(e);
                break;
            }
        }
        match lost {
            Some(OsError::DiskLost { disk, .. }) => assert_eq!(disk, 1),
            other => panic!("expected DiskLost, got {other:?}"),
        }
        assert!(format!("{}", lost.unwrap()).contains("no redundancy: data lost"));
    }

    #[test]
    fn prefetch_hints_reroute_around_the_dead_disk() {
        let mut m = tiny_parity();
        m.set_fault_plan(
            &FaultPlan::none(9).with_disk_death(oocp_disk::DiskDeath { disk: 0, at: 1 }),
        );
        // First contact with the dead disk happens *inside* the hint
        // path, before any rebuild progress: the runs aimed at the dead
        // slot must reroute into survivor fan-outs, not drop.
        m.sys_prefetch(0, 28);
        assert!(m.degraded_active(), "hint path latched the death");
        let s = m.stats();
        assert!(
            s.hints_rerouted_degraded > 0,
            "hints to the dead disk rerouted, not dropped"
        );
        assert_eq!(s.hints_dropped_on_error, 0, "reroute is not a drop");
        for p in 0..28u64 {
            m.touch(p * 4096, 8, false);
        }
    }

    #[test]
    fn corrupt_parity_is_caught_and_healed_by_rebuild_verify() {
        let mut m = tiny_parity();
        for p in 0..64u64 {
            m.store_f64(p * 4096, p as f64);
        }
        // Latent corruption planted while the array is healthy...
        assert!(m.corrupt_parity_row(0), "hook needs a parity layout");
        assert!(m.corrupt_parity_row(3));
        // ...then a disk dies and the rebuild's verify sweep runs over
        // every stripe row on its way to the spare.
        m.set_fault_plan(
            &FaultPlan::none(13).with_disk_death(oocp_disk::DiskDeath { disk: 2, at: 1 }),
        );
        m.touch(2 * 4096, 8, false); // page 2 lives on disk 2: trips detection
        m.finish_rebuild();
        assert!(!m.degraded_active());
        assert_eq!(
            m.stats().rebuild_verify_mismatches,
            2,
            "both corrupted rows detected"
        );
        // Healed: the rebuild re-derived parity from the durable pages,
        // and the data itself is untouched by the corruption.
        for p in 0..64u64 {
            assert_eq!(m.peek_f64(p * 4096), p as f64);
        }
    }

    #[test]
    fn hedged_reads_fire_under_tail_latency() {
        // The hedge deadline is the p99 of observed fault waits, so the
        // run first builds that history on a healthy array, then loses
        // a disk: demand reads contending with rebuild fan-out blow the
        // healthy-era p99 and race a speculative alternative.
        let mut p = MachineParams::small();
        p.resident_limit = 64;
        p.demand_reserve = 2;
        p.low_water = 4;
        p.high_water = 8;
        p.redundancy = Redundancy::Parity;
        let mut m = Machine::new(p, 512 * 4096);
        m.enable_metrics();
        for p in 0..512u64 {
            m.store_f64(p * 4096, p as f64);
        }
        let death = oocp_disk::DiskDeath {
            disk: 1,
            at: m.now() + 1,
        };
        m.set_fault_plan(&FaultPlan::none(21).with_disk_death(death));
        for p in 0..512u64 {
            assert_eq!(m.load_f64(p * 4096), p as f64);
        }
        assert!(m.stats().hedged_reads > 0, "deadline misses hedged");
        assert!(
            m.stats().hedged_wins <= m.stats().hedged_reads,
            "wins bounded by attempts"
        );
    }

    #[test]
    fn plain_machine_is_bitwise_unaffected_by_redundancy_code() {
        // A plain-mode machine must be bit-identical whether or not
        // the parity subsystem exists: same clock, same stats, same
        // breakdown for the same access pattern.
        let mut a = tiny();
        let mut b = tiny();
        for m in [&mut a, &mut b] {
            for p in 0..64u64 {
                m.store_f64(p * 4096, p as f64);
            }
            m.sys_prefetch(0, 32);
            for p in 0..64u64 {
                m.load_f64(p * 4096);
            }
            m.finish();
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.breakdown(), b.breakdown());
    }
}
