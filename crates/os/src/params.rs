//! Machine configuration parameters.

use oocp_disk::{DiskParams, SchedConfig};
use oocp_policy::PolicyKind;
use oocp_sim::time::{Ns, MICROSECOND, MILLISECOND};

use crate::error::ConfigError;

/// Redundancy scheme of the swap file's on-disk layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Redundancy {
    /// Plain round-robin striping, no redundancy: a permanent disk
    /// death loses data. The default — every pre-existing cell stays
    /// bit-identical.
    #[default]
    None,
    /// RAID-5-style rotating parity: each stripe row of width `ndisks`
    /// carries one XOR parity block on a rotating disk, so the machine
    /// survives any single whole-disk death via degraded reads and an
    /// online rebuild onto a hot spare.
    Parity,
}

impl Redundancy {
    /// Parse a `--redundancy` command-line value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Redundancy::None),
            "parity" => Some(Redundancy::Parity),
            _ => None,
        }
    }

    /// The command-line name of this scheme.
    pub fn name(&self) -> &'static str {
        match self {
            Redundancy::None => "none",
            Redundancy::Parity => "parity",
        }
    }
}

/// Configuration of the simulated machine: memory geometry, OS overheads,
/// and the disk subsystem.
///
/// Two presets are provided: [`MachineParams::paper_platform`] mirrors the
/// paper's Table 1 Hector/Hurricane configuration (64 MB of memory of
/// which ~48 MB is available to the application, 7 disks, 4 KB pages,
/// heavily instrumented OS paths), and [`MachineParams::small`] is a
/// scaled-down configuration used by the test suite. All overheads are
/// explicit so the benchmark harness can run sensitivity sweeps.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Page size in bytes. Must be a power of two.
    pub page_bytes: u64,
    /// Number of page frames available to the application (the paper's
    /// "~48 MB available" out of 64 MB physical).
    pub resident_limit: u64,
    /// Frames held back from prefetch allocation so a demand fault can
    /// always be serviced without waiting on hint traffic.
    pub demand_reserve: u64,
    /// Pageout daemon low watermark: replenishment starts when
    /// free + reclaimable frames drop below this.
    pub low_water: u64,
    /// Pageout daemon high watermark: replenishment stops here.
    pub high_water: u64,
    /// Kernel time to handle a hard (disk-backed) page fault, excluding
    /// the disk wait itself.
    pub fault_overhead_ns: Ns,
    /// Kernel time to handle a soft fault (reclaim from the free list).
    pub soft_fault_overhead_ns: Ns,
    /// Fixed kernel cost of a prefetch/release system call.
    pub hint_syscall_ns: Ns,
    /// Additional kernel cost per page examined inside a hint call.
    pub hint_per_page_ns: Ns,
    /// Number of disks the file system stripes across.
    pub ndisks: usize,
    /// Physical parameters of each disk.
    pub disk: DiskParams,
    /// Per-disk I/O scheduler configuration (policy, queue depth,
    /// coalescing). The default is the paper baseline: unbounded FCFS
    /// with no coalescing.
    pub sched: SchedConfig,
    /// Whether to stall at exit until all dirty pages are flushed and the
    /// disks drain (the paper's apps write their results back out).
    pub drain_at_exit: bool,
    /// Retries granted to a failed demand read or write-back before the
    /// error surfaces (prefetch reads never retry — they are hints).
    pub io_max_retries: u32,
    /// First retry backoff; doubles on each subsequent retry of the same
    /// request (a brownout error instead waits out the stated window).
    pub io_backoff_base_ns: Ns,
    /// Total time one request may spend waiting between retries before
    /// the error surfaces regardless of the retry count.
    pub io_retry_budget_ns: Ns,
    /// Whether dirty-page writebacks go through the write-ahead journal
    /// when the machine runs in durability mode (a crash is scheduled).
    /// Disabling it is how the negative CI gate proves a torn write
    /// without WAL protection loses data. Fault-free runs never
    /// journal regardless, so the default timings are unaffected.
    pub journal: bool,
    /// Journal ring size per disk, in blocks (two blocks per record).
    pub journal_blocks_per_disk: u64,
    /// Which prefetch policy the machine runs alongside (or instead of)
    /// the compiler's hints. The default, `CompilerOnly`, installs no
    /// policy object at all, so the machine is bit-identical to a
    /// build without the policy subsystem.
    pub policy: PolicyKind,
    /// On-disk redundancy of the swap file. The default, `None`,
    /// keeps the exact historical striping formulas and issues no
    /// parity I/O, so every pre-existing cell stays bit-identical;
    /// `Parity` survives one whole-disk death.
    pub redundancy: Redundancy,
}

impl MachineParams {
    /// The paper's Table 1 platform, scaled faithfully: 4 KB pages, 7
    /// disks, 48 MB of application-available memory, instrumentation-
    /// inflated kernel overheads.
    ///
    /// The exact Table 1 numbers are not recoverable from the paper text
    /// (the table is an image), so the overheads are set to values
    /// consistent with the prose: fault handling is hundreds of
    /// microseconds on the 16.7 MHz Hector with instrumentation enabled,
    /// a hint system call is of the same order, and the user-level filter
    /// check (see the run-time crate) is ~1% of the hint call.
    pub fn paper_platform() -> Self {
        Self {
            page_bytes: 4096,
            resident_limit: 48 * 1024 * 1024 / 4096, // 48 MB
            demand_reserve: 16,
            low_water: 64,
            high_water: 256,
            fault_overhead_ns: 500 * MICROSECOND,
            soft_fault_overhead_ns: 120 * MICROSECOND,
            hint_syscall_ns: 250 * MICROSECOND,
            hint_per_page_ns: 25 * MICROSECOND,
            ndisks: 7,
            disk: DiskParams::default(),
            sched: SchedConfig::default(),
            drain_at_exit: true,
            io_max_retries: 6,
            io_backoff_base_ns: 2 * MILLISECOND,
            io_retry_budget_ns: 2000 * MILLISECOND,
            journal: true,
            journal_blocks_per_disk: 64,
            policy: PolicyKind::CompilerOnly,
            redundancy: Redundancy::None,
        }
    }

    /// A 2020s machine: one SATA SSD, microsecond-scale kernel paths
    /// (post-Meltdown syscalls still cost ~1 us), gigahertz CPU. Used by
    /// the `modern` experiment to ask whether the paper's conclusion
    /// survives 25 years of hardware evolution.
    pub fn modern_ssd() -> Self {
        Self {
            page_bytes: 4096,
            resident_limit: 48 * 1024 * 1024 / 4096,
            demand_reserve: 16,
            low_water: 64,
            high_water: 256,
            fault_overhead_ns: 3_000,
            soft_fault_overhead_ns: 800,
            hint_syscall_ns: 1_200,
            hint_per_page_ns: 120,
            ndisks: 1,
            disk: DiskParams::ssd(),
            sched: SchedConfig::default(),
            drain_at_exit: true,
            io_max_retries: 6,
            io_backoff_base_ns: 100 * MICROSECOND,
            io_retry_budget_ns: 500 * MILLISECOND,
            journal: true,
            journal_blocks_per_disk: 64,
            policy: PolicyKind::CompilerOnly,
            redundancy: Redundancy::None,
        }
    }

    /// Like [`MachineParams::modern_ssd`] but with an NVMe drive.
    pub fn modern_nvme() -> Self {
        Self {
            disk: DiskParams::nvme(),
            ..Self::modern_ssd()
        }
    }

    /// A scaled-down machine (2 MB of application memory, 7 disks) used
    /// by unit and integration tests; identical overhead ratios to
    /// [`MachineParams::paper_platform`].
    pub fn small() -> Self {
        Self {
            resident_limit: 2 * 1024 * 1024 / 4096, // 2 MB = 512 frames
            demand_reserve: 8,
            low_water: 16,
            high_water: 64,
            ..Self::paper_platform()
        }
    }

    /// Same configuration with a different amount of application memory.
    ///
    /// Watermarks and the demand reserve are clamped so small memories
    /// stay internally consistent.
    pub fn with_memory_bytes(mut self, bytes: u64) -> Self {
        self.resident_limit = (bytes / self.page_bytes).max(8);
        self.high_water = self.high_water.min(self.resident_limit / 4);
        self.low_water = self.low_water.min(self.high_water / 2).max(1);
        self.demand_reserve = self.demand_reserve.min((self.resident_limit / 16).max(1));
        self
    }

    /// Same configuration with a different disk count.
    pub fn with_ndisks(mut self, n: usize) -> Self {
        self.ndisks = n;
        self
    }

    /// Same configuration with a different I/O scheduler.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Same configuration with a different prefetch policy.
    pub fn with_prefetch_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Same configuration with a different redundancy scheme.
    pub fn with_redundancy(mut self, redundancy: Redundancy) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Application-available memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.resident_limit * self.page_bytes
    }

    /// Check internal consistency, reporting the first problem found as
    /// a typed [`ConfigError`]. The bench binaries call this on every
    /// command-line-assembled configuration and exit with the message
    /// instead of panicking.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(self.page_bytes.is_power_of_two() && self.page_bytes >= 512) {
            return Err(ConfigError::BadPageSize {
                page_bytes: self.page_bytes,
            });
        }
        if self.resident_limit < 8 {
            return Err(ConfigError::TooFewFrames {
                resident_limit: self.resident_limit,
            });
        }
        if self.demand_reserve >= self.resident_limit {
            return Err(ConfigError::ReserveTooLarge {
                demand_reserve: self.demand_reserve,
                resident_limit: self.resident_limit,
            });
        }
        if self.low_water > self.high_water {
            return Err(ConfigError::InvertedWatermarks {
                low_water: self.low_water,
                high_water: self.high_water,
            });
        }
        if self.high_water >= self.resident_limit {
            return Err(ConfigError::HighWaterTooHigh {
                high_water: self.high_water,
                resident_limit: self.resident_limit,
            });
        }
        if self.ndisks == 0 {
            return Err(ConfigError::NoDisks);
        }
        if self.disk.block_bytes != self.page_bytes {
            return Err(ConfigError::BlockSizeMismatch {
                block_bytes: self.disk.block_bytes,
                page_bytes: self.page_bytes,
            });
        }
        if self.journal && self.journal_blocks_per_disk < 2 {
            return Err(ConfigError::JournalTooSmall {
                journal_blocks_per_disk: self.journal_blocks_per_disk,
            });
        }
        if self.redundancy == Redundancy::Parity && self.ndisks < 2 {
            return Err(ConfigError::ParityNeedsTwoDisks {
                ndisks: self.ndisks,
            });
        }
        self.sched.check()?;
        Ok(())
    }

    /// Validate internal consistency; called by the machine constructor.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero/non-power-of-two page
    /// size, watermarks out of order, no disks, reserve exceeding
    /// memory). These are programming errors in experiment setup;
    /// callers assembling parameters from untrusted input use
    /// [`MachineParams::check`] instead.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineParams::paper_platform().validate();
        MachineParams::small().validate();
        MachineParams::default().validate();
    }

    #[test]
    fn paper_platform_matches_table1_shape() {
        let p = MachineParams::paper_platform();
        assert_eq!(p.page_bytes, 4096);
        assert_eq!(p.ndisks, 7);
        assert_eq!(p.memory_bytes(), 48 * 1024 * 1024);
    }

    #[test]
    fn default_policy_is_compiler_only() {
        assert_eq!(MachineParams::small().policy, PolicyKind::CompilerOnly);
        assert_eq!(
            MachineParams::small()
                .with_prefetch_policy(PolicyKind::Readahead)
                .policy,
            PolicyKind::Readahead
        );
    }

    #[test]
    fn with_memory_bytes_adjusts_frames() {
        let p = MachineParams::small().with_memory_bytes(8 * 1024 * 1024);
        assert_eq!(p.resident_limit, 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_rejected() {
        let mut p = MachineParams::small();
        p.page_bytes = 3000;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn inverted_watermarks_rejected() {
        let mut p = MachineParams::small();
        p.low_water = p.high_water + 1;
        p.validate();
    }

    #[test]
    fn check_reports_typed_errors() {
        let mut p = MachineParams::small();
        p.resident_limit = 0;
        assert_eq!(
            p.check(),
            Err(ConfigError::TooFewFrames { resident_limit: 0 })
        );

        let mut p = MachineParams::small();
        p.sched.queue_depth = 0;
        assert!(matches!(p.check(), Err(ConfigError::Sched(_))));
        assert!(p.check().unwrap_err().to_string().contains("queue depth"));

        assert_eq!(MachineParams::paper_platform().check(), Ok(()));
    }
}
