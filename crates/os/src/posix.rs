//! POSIX-flavored `madvise` shim over the hint operations.
//!
//! The paper notes that "the `MADV_WILLNEED` and `MADV_DONTNEED` hints to
//! the `madvise()` interface can potentially be used to implement
//! prefetch and release in UNIX" — this module provides exactly that
//! mapping, so code written against the familiar POSIX surface can drive
//! the simulated machine.

use std::fmt;

use crate::machine::Machine;

/// `madvise` advice values supported by the shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// `MADV_NORMAL`: no special treatment (a no-op here).
    Normal,
    /// `MADV_WILLNEED`: expect access soon — mapped to a non-binding
    /// prefetch of the covered pages.
    WillNeed,
    /// `MADV_DONTNEED`: do not expect access soon — mapped to a
    /// non-binding release of the covered pages.
    DontNeed,
}

/// Error from the shim (mirrors `EINVAL`/`ENOMEM` usage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MadviseError {
    /// Zero-length range (`EINVAL`).
    EmptyRange,
    /// Range extends past the address space (`ENOMEM`).
    OutOfRange,
}

impl fmt::Display for MadviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MadviseError::EmptyRange => write!(f, "madvise: empty range (EINVAL)"),
            MadviseError::OutOfRange => write!(f, "madvise: range out of bounds (ENOMEM)"),
        }
    }
}

impl std::error::Error for MadviseError {}

/// Apply `advice` to the byte range `[addr, addr + len)`.
///
/// Page rounding follows `madvise(2)`: the range is expanded to page
/// boundaries (the start rounds down, the end rounds up).
pub fn madvise(m: &mut Machine, addr: u64, len: u64, advice: Advice) -> Result<(), MadviseError> {
    if len == 0 {
        return Err(MadviseError::EmptyRange);
    }
    let page = m.params().page_bytes;
    let first = addr / page;
    let last = (addr + len - 1) / page;
    if last >= m.total_pages() {
        return Err(MadviseError::OutOfRange);
    }
    let count = last - first + 1;
    match advice {
        Advice::Normal => {}
        Advice::WillNeed => m.sys_prefetch(first, count),
        Advice::DontNeed => m.sys_release(first, count),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MachineParams;

    fn machine() -> Machine {
        let mut p = MachineParams::small();
        p.resident_limit = 64;
        p.demand_reserve = 4;
        p.low_water = 8;
        p.high_water = 16;
        Machine::new(p, 128 * 4096)
    }

    #[test]
    fn willneed_prefetches_the_covered_pages() {
        let mut m = machine();
        // 3 bytes straddling a page boundary cover 2 pages.
        madvise(&mut m, 4096 - 2, 4, Advice::WillNeed).unwrap();
        assert_eq!(m.stats().prefetch_pages_requested, 2);
        assert_eq!(m.stats().prefetch_pages_issued, 2);
    }

    #[test]
    fn dontneed_releases_resident_pages() {
        let mut m = machine();
        m.touch(0, 8, true);
        madvise(&mut m, 0, 1, Advice::DontNeed).unwrap();
        assert_eq!(m.stats().release_pages_effective, 1);
        // Data survives (non-binding semantics): the page was written
        // back, not discarded.
        assert_eq!(m.load_f64(0), 0.0);
    }

    #[test]
    fn normal_is_a_noop() {
        let mut m = machine();
        madvise(&mut m, 0, 4096, Advice::Normal).unwrap();
        assert_eq!(m.stats().hint_syscalls, 0);
    }

    #[test]
    fn errors_mirror_posix() {
        let mut m = machine();
        assert_eq!(
            madvise(&mut m, 0, 0, Advice::WillNeed),
            Err(MadviseError::EmptyRange)
        );
        assert_eq!(
            madvise(&mut m, 127 * 4096, 2 * 4096, Advice::WillNeed),
            Err(MadviseError::OutOfRange)
        );
    }
}
