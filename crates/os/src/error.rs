//! Typed errors for the OS layer's I/O request path.
//!
//! The simulated machine historically panicked on any I/O trouble; with
//! fault injection in the disk layer, errors in the request path are
//! ordinary outcomes that must carry enough context to act on: retry
//! (transient), wait (brownout), drop (prefetch hints), or surface to
//! the caller (demand reads that exhausted their retry budget).

use std::fmt;

use oocp_disk::{IoError, SchedError};
use oocp_fs::FsError;
use oocp_sim::time::Ns;

/// A nonsensical [`crate::MachineParams`] configuration, reported by
/// [`crate::MachineParams::check`].
///
/// Historically these were `assert!` panics inside `validate()`; typed
/// variants let the bench binaries turn a bad `--queue-depth 0` or
/// `--memory 0` into an exit-with-message instead of a backtrace. The
/// `Display` strings deliberately contain the same key phrases the old
/// panics used ("power of two", "watermark", "queue depth", ...) so
/// message-matching callers keep working.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Page size is zero, not a power of two, or below 512 bytes.
    BadPageSize {
        /// The rejected page size.
        page_bytes: u64,
    },
    /// Fewer than 8 resident frames (effectively zero-page memory).
    TooFewFrames {
        /// The rejected resident limit.
        resident_limit: u64,
    },
    /// The demand reserve leaves no frames for the application.
    ReserveTooLarge {
        /// The rejected reserve.
        demand_reserve: u64,
        /// The resident limit it must stay below.
        resident_limit: u64,
    },
    /// Pageout watermarks out of order (low above high).
    InvertedWatermarks {
        /// Low watermark.
        low_water: u64,
        /// High watermark.
        high_water: u64,
    },
    /// The high watermark is not below the resident limit.
    HighWaterTooHigh {
        /// High watermark.
        high_water: u64,
        /// The resident limit it must stay below.
        resident_limit: u64,
    },
    /// A diskless machine cannot run the simulator.
    NoDisks,
    /// Disk block size disagrees with the page size.
    BlockSizeMismatch {
        /// Disk block size in bytes.
        block_bytes: u64,
        /// Page size in bytes.
        page_bytes: u64,
    },
    /// Journaling enabled with a ring too small for one record.
    JournalTooSmall {
        /// The rejected ring size in blocks.
        journal_blocks_per_disk: u64,
    },
    /// Parity redundancy on an array too small to reconstruct from.
    ParityNeedsTwoDisks {
        /// The rejected disk count.
        ndisks: usize,
    },
    /// The disk scheduler configuration is invalid.
    Sched(SchedError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::BadPageSize { page_bytes } => {
                write!(
                    f,
                    "page size must be a power of two >= 512 (got {page_bytes})"
                )
            }
            ConfigError::TooFewFrames { resident_limit } => {
                write!(f, "need at least 8 frames (got {resident_limit})")
            }
            ConfigError::ReserveTooLarge {
                demand_reserve,
                resident_limit,
            } => write!(
                f,
                "demand reserve must leave frames for the application \
                 (reserve {demand_reserve}, limit {resident_limit})"
            ),
            ConfigError::InvertedWatermarks {
                low_water,
                high_water,
            } => write!(
                f,
                "low watermark above high watermark ({low_water} > {high_water})"
            ),
            ConfigError::HighWaterTooHigh {
                high_water,
                resident_limit,
            } => write!(
                f,
                "high watermark must be below the resident limit \
                 ({high_water} >= {resident_limit})"
            ),
            ConfigError::NoDisks => write!(f, "need at least one disk"),
            ConfigError::BlockSizeMismatch {
                block_bytes,
                page_bytes,
            } => write!(
                f,
                "disk block size must equal the page size \
                 (block {block_bytes}, page {page_bytes})"
            ),
            ConfigError::JournalTooSmall {
                journal_blocks_per_disk,
            } => write!(
                f,
                "journal needs at least one two-block record slot per disk \
                 (got {journal_blocks_per_disk} blocks)"
            ),
            ConfigError::ParityNeedsTwoDisks { ndisks } => write!(
                f,
                "parity redundancy needs at least two disks (got {ndisks})"
            ),
            ConfigError::Sched(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<SchedError> for ConfigError {
    fn from(e: SchedError) -> Self {
        ConfigError::Sched(e)
    }
}

/// An error surfaced by the machine's request path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsError {
    /// A disk request failed and is not being retried.
    Io(IoError),
    /// The file system could not place the request.
    Fs(FsError),
    /// A demand read or write-back failed, every retry failed too, and
    /// the backoff budget is spent.
    RetriesExhausted {
        /// The error from the final attempt.
        last: IoError,
        /// Total submission attempts (first try plus retries).
        attempts: u32,
        /// Total time spent waiting between attempts.
        waited_ns: Ns,
        /// The virtual page whose I/O failed.
        page: u64,
    },
    /// The backing file could not be created: the disk array is smaller
    /// than the requested address space.
    BackingExhausted {
        /// Pages of address space requested.
        pages: u64,
        /// Capacity of each disk in blocks.
        capacity_blocks: u64,
    },
    /// No frame could be found for a demand fault even after forcing
    /// the pageout daemon — the resident limit is over-committed by
    /// in-flight I/O.
    OutOfFrames {
        /// Pages currently resident.
        resident: u64,
        /// Pages currently in flight.
        inflight: u64,
        /// The resident-frame limit.
        limit: u64,
    },
    /// The machine suffered a simulated power loss: the disks are gone
    /// and no request can complete. The run is over; the only way
    /// forward is [`crate::Machine::recover`].
    Crashed {
        /// Simulated time of the power loss.
        at: Ns,
    },
    /// A disk died permanently and the machine runs without redundancy:
    /// every page striped onto it is gone and no retry or recovery pass
    /// can bring it back. Fatal by design — the CI negative gate proves
    /// this surfaces instead of being retried into oblivion.
    DiskLost {
        /// Index of the dead disk.
        disk: usize,
        /// Simulated time of the death.
        at: Ns,
    },
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OsError::Io(e) => write!(f, "I/O error: {e}"),
            OsError::Fs(e) => write!(f, "file system error: {e}"),
            OsError::RetriesExhausted {
                last,
                attempts,
                waited_ns,
                page,
            } => write!(
                f,
                "page {page}: I/O retries exhausted after {attempts} attempts \
                 ({waited_ns} ns waited): {last}"
            ),
            OsError::BackingExhausted {
                pages,
                capacity_blocks,
            } => write!(
                f,
                "disk array too small for the requested address space \
                 ({pages} pages, {capacity_blocks} blocks per disk)"
            ),
            OsError::OutOfFrames {
                resident,
                inflight,
                limit,
            } => write!(
                f,
                "out of frames: {resident} resident, {inflight} in flight, limit {limit}"
            ),
            OsError::Crashed { at } => {
                write!(f, "machine crashed (simulated power loss at {at} ns)")
            }
            OsError::DiskLost { disk, at } => write!(
                f,
                "disk {disk} died at {at} ns with no redundancy: data lost"
            ),
        }
    }
}

/// Dirty pages that could not be made durable by the end of a run:
/// write-backs abandoned after exhausted retries, or pages still dirty
/// when a crash cut the disks off. Returned by
/// [`crate::Machine::try_finish`] so callers can distinguish a clean
/// finish ("every result is on disk") from silent data loss. Carries
/// the affected pages, so it is deliberately not `Copy` like
/// [`OsError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlushError {
    /// Virtual pages whose final contents never reached the disks,
    /// sorted and deduplicated.
    pub vpages: Vec<u64>,
}

impl fmt::Display for FlushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dirty page(s) were not flushed durably (first: {:?})",
            self.vpages.len(),
            self.vpages.first()
        )
    }
}

impl std::error::Error for FlushError {}

impl std::error::Error for OsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Io(e) => Some(e),
            OsError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoError> for OsError {
    fn from(e: IoError) -> Self {
        OsError::Io(e)
    }
}

impl From<FsError> for OsError {
    fn from(e: FsError) -> Self {
        OsError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = OsError::RetriesExhausted {
            last: IoError::Transient { disk: 3 },
            attempts: 7,
            waited_ns: 123,
            page: 42,
        };
        let s = e.to_string();
        assert!(s.contains("page 42"));
        assert!(s.contains("7 attempts"));
        assert!(s.contains("disk 3"));

        let e = OsError::OutOfFrames {
            resident: 10,
            inflight: 2,
            limit: 12,
        };
        assert!(e.to_string().contains("out of frames"));
    }

    #[test]
    fn conversions_wrap() {
        let io: OsError = IoError::EmptyRequest.into();
        assert_eq!(io, OsError::Io(IoError::EmptyRequest));
    }
}
