//! Counters the evaluation figures are built from.

use oocp_sim::stats::RunningStat;
use oocp_sim::time::Ns;

/// Classification of a first demand touch of a page-in, matching
/// Figure 4(a)'s breakdown of "the original page faults".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The page had been prefetched and was resident when first touched:
    /// the original fault was eliminated.
    PrefetchedHit,
    /// The page had been prefetched but the touch still faulted (the
    /// prefetch was issued too late, or the page was flushed or dropped
    /// before use).
    PrefetchedFault,
    /// The page was never prefetched; the fault survived untouched.
    NonPrefetchedFault,
}

/// Counters maintained by the machine during a run.
///
/// All figures and tables of the paper's evaluation are computed from
/// these (plus the per-disk counters in the disk crate).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OsStats {
    /// Distribution of hard-fault disk waits (mean/min/max), the
    /// latency the whole scheme exists to hide.
    pub fault_wait: RunningStat,
    /// Hard faults: demand reads the application stalled on.
    pub hard_faults: u64,
    /// Soft faults: reclaims from the free list (no disk I/O).
    pub soft_faults: u64,
    /// Faults that found the page in flight from a prefetch and stalled
    /// only for the residual latency.
    pub prefetched_faults_inflight: u64,
    /// Faults on pages that had been prefetched but were flushed or
    /// dropped before first use.
    pub prefetched_faults_lost: u64,
    /// First touches that found a prefetched page resident (original
    /// faults fully eliminated).
    pub prefetched_hits: u64,
    /// First touches of demand-faulted, never-prefetched pages.
    pub non_prefetched_faults: u64,
    /// Prefetch/release system calls received by the OS.
    pub hint_syscalls: u64,
    /// Pages requested across all prefetch hints received.
    pub prefetch_pages_requested: u64,
    /// Prefetch pages that started disk I/O.
    pub prefetch_pages_issued: u64,
    /// Prefetch pages found already resident and in active use —
    /// "unnecessary prefetches issued to the system" (Figure 4(b) left).
    pub prefetch_pages_unnecessary: u64,
    /// Prefetch pages that reclaimed a free-list page (useful, no I/O).
    pub prefetch_pages_reclaimed: u64,
    /// Prefetch pages found already in flight.
    pub prefetch_pages_inflight: u64,
    /// Prefetch pages dropped because no memory was free.
    pub prefetch_pages_dropped: u64,
    /// Pages named by release hints.
    pub release_pages: u64,
    /// Release pages that actually moved a resident page to the free list.
    pub release_pages_effective: u64,
    /// Dirty-page write-backs scheduled (evictions, releases, final flush).
    pub writebacks: u64,
    /// Pages evicted by the pageout daemon's clock scan.
    pub daemon_evictions: u64,
    /// Total stall time attributable to prefetched-but-late pages.
    pub late_prefetch_stall_ns: Ns,
    /// Disk errors observed by the OS request path (before retries).
    pub io_errors_observed: u64,
    /// Retry attempts made for failed demand reads and write-backs.
    pub io_retries: u64,
    /// Time spent waiting between retry attempts (charged as idle).
    pub io_retry_wait_ns: Ns,
    /// Prefetch pages whose disk read failed; the hint was dropped
    /// silently (hints are non-binding, so no retry and no error).
    pub hints_dropped_on_error: u64,
    /// Prefetch pages dropped because the target disk's bounded request
    /// queue was full (backpressure, not a fault — no error counted).
    pub hints_dropped_queue_full: u64,
    /// Prefetch pages dropped because the issuing tenant's prefetch-slot
    /// or memory quota was exhausted. Always zero without registered
    /// tenants (the implicit solo tenant is unlimited).
    pub hints_dropped_quota: u64,
    /// Prefetch pages shed by the pressure arbiter (elevation clamp on
    /// best-effort tenants, or a brownout dropping all non-guaranteed
    /// hints). Always zero without registered tenants.
    pub hints_dropped_pressure: u64,
    /// Times a demand read or write-back blocked on a full disk queue
    /// before being accepted.
    pub queue_full_waits: u64,
    /// Time spent waiting for disk-queue slots (charged as idle).
    pub queue_full_wait_ns: Ns,
    /// Write-backs abandoned after exhausting retries (the backing
    /// store is authoritative in the simulator, so this costs nothing
    /// but is reported for the durability ledger).
    pub writebacks_abandoned: u64,
    /// Residency-bit clears lost to injected desync (the stale bit
    /// stays set until a resync rebuilds the vector).
    pub bitvec_stale_injected: u64,
    /// Bit-vector resyncs performed.
    pub bitvec_resyncs: u64,
    /// Stale bits fixed across all resyncs.
    pub bitvec_stale_fixed: u64,
    /// Intent records appended to the write-ahead writeback journal.
    pub journal_appends: u64,
    /// Times a writeback stalled synchronously because its disk's
    /// journal ring was full and the oldest record had to be forced
    /// durable first.
    pub journal_stalls: u64,
    /// Recovery: journal records replayed onto their home blocks
    /// (sealed before the crash, data write possibly lost).
    pub recovery_pages_replayed: u64,
    /// Recovery: in-flight updates discarded because their journal
    /// record was not yet durably sealed (the home block kept the old
    /// image by the write barrier).
    pub recovery_pages_discarded: u64,
    /// Recovery: home blocks whose stored checksum failed — a torn
    /// write caught mid-air by the crash.
    pub recovery_torn_detected: u64,
    /// Recovery: torn or lost pages with no journal payload to replay
    /// from. Zero whenever the journal was enabled; the negative CI
    /// gate proves it goes positive without one.
    pub recovery_unrecoverable: u64,
    /// Simulated time the recovery pass spent scanning, replaying, and
    /// verifying (charged as idle on the recovered machine).
    pub recovery_ns: Ns,
    /// Cold pages whose durable checksum the background scrubber
    /// verified.
    pub scrub_pages_verified: u64,
    /// Scrubbed pages found corrupt and repaired from committed journal
    /// state.
    pub scrub_pages_repaired: u64,
    /// Prefetch pages injected by the installed prefetch policy (over
    /// and above the compiler's hints). Zero under `CompilerOnly`.
    pub policy_injected_prefetch_pages: u64,
    /// Release pages injected by the installed prefetch policy.
    pub policy_injected_release_pages: u64,
    /// Peak readahead window / lead distance the policy reached, in
    /// pages (policy-defined; see `oocp_policy::PolicyCounters`).
    pub policy_window_peak: u64,
    /// Times the policy's distance controller retuned its lead.
    pub policy_distance_retunes: u64,
    /// Late-rate observation windows the policy completed.
    pub policy_late_rate_samples: u64,
    /// Interpreter operations retired (one per [`tick_user`] call) —
    /// the telemetry sampler's progress counter. Not gated in
    /// baselines: it measures the driver, not the paging system.
    ///
    /// [`tick_user`]: crate::Machine::tick_user
    pub user_ops: u64,
    /// Demand reads served by degraded reconstruction: the page's home
    /// disk was dead, so the row's survivors were read and XOR-ed.
    pub degraded_reads: u64,
    /// Total stall time of degraded demand reconstructions.
    pub degraded_read_ns: Ns,
    /// Prefetch pages whose home disk was dead and whose hint was
    /// rerouted into a survivor fan-out instead of being dropped.
    pub hints_rerouted_degraded: u64,
    /// Degraded demand reads that blew the hedging deadline and raced
    /// a speculative reconstruction against the straggling original.
    pub hedged_reads: u64,
    /// Hedged races the speculative reconstruction won.
    pub hedged_wins: u64,
    /// Stripe rows the online rebuild scrubber reconstructed onto the
    /// hot spare.
    pub rebuild_rows: u64,
    /// Rebuilt rows whose reconstructed block failed verification
    /// against the durable content model. Zero unless the debug
    /// parity-corruption hook fired; the CI negative gate proves the
    /// verify sweep catches it.
    pub rebuild_verify_mismatches: u64,
    /// Simulated time from death detection to rebuild completion.
    /// Zero while a rebuild is still running.
    pub rebuild_ns: Ns,
    /// Parity blocks written (one per writeback row update plus one
    /// per rebuilt parity-home row).
    pub parity_writes: u64,
}

impl OsStats {
    /// Total first-touch page-in events — the denominator of
    /// Figure 4(a), i.e. what the faults *would have been* without any
    /// prefetching ("original page faults").
    pub fn original_faults(&self) -> u64 {
        self.prefetched_hits + self.prefetched_faults() + self.non_prefetched_faults
    }

    /// Faults that had been prefetched but still stalled the application.
    pub fn prefetched_faults(&self) -> u64 {
        self.prefetched_faults_inflight + self.prefetched_faults_lost
    }

    /// Fraction of original faults covered by a prefetch (Figure 4(a)'s
    /// coverage factor). Zero when nothing faulted.
    pub fn coverage(&self) -> f64 {
        let total = self.original_faults();
        if total == 0 {
            return 0.0;
        }
        (self.prefetched_hits + self.prefetched_faults()) as f64 / total as f64
    }

    /// Fraction of prefetch pages issued to the OS that were unnecessary
    /// (Figure 4(b), left column).
    pub fn unnecessary_issued_fraction(&self) -> f64 {
        let seen = self.prefetch_pages_requested;
        if seen == 0 {
            0.0
        } else {
            self.prefetch_pages_unnecessary as f64 / seen as f64
        }
    }

    /// Fraction of prefetch pages issued to disk whose read failed.
    /// Zero when no prefetch I/O was issued.
    pub fn hint_error_fraction(&self) -> f64 {
        let issued = self.prefetch_pages_issued + self.hints_dropped_on_error;
        if issued == 0 {
            0.0
        } else {
            self.hints_dropped_on_error as f64 / issued as f64
        }
    }

    /// Mean retries per observed I/O error. Zero when no errors occurred.
    pub fn retries_per_error(&self) -> f64 {
        if self.io_errors_observed == 0 {
            0.0
        } else {
            self.io_retries as f64 / self.io_errors_observed as f64
        }
    }

    /// Record a first-touch classification.
    pub fn classify(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::PrefetchedHit => self.prefetched_hits += 1,
            FaultKind::PrefetchedFault => {} // split into the two detailed counters by the caller
            FaultKind::NonPrefetchedFault => self.non_prefetched_faults += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_math() {
        let s = OsStats {
            prefetched_hits: 75,
            prefetched_faults_inflight: 10,
            prefetched_faults_lost: 5,
            non_prefetched_faults: 10,
            ..OsStats::default()
        };
        assert_eq!(s.original_faults(), 100);
        assert_eq!(s.prefetched_faults(), 15);
        assert!((s.coverage() - 0.90).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = OsStats::default();
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.unnecessary_issued_fraction(), 0.0);
        assert_eq!(s.hint_error_fraction(), 0.0);
        assert_eq!(s.retries_per_error(), 0.0);
    }

    #[test]
    fn fault_ratios_guard_and_compute() {
        let s = OsStats {
            prefetch_pages_issued: 90,
            hints_dropped_on_error: 10,
            io_errors_observed: 4,
            io_retries: 6,
            ..OsStats::default()
        };
        assert!((s.hint_error_fraction() - 0.10).abs() < 1e-12);
        assert!((s.retries_per_error() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unnecessary_fraction() {
        let s = OsStats {
            prefetch_pages_requested: 200,
            prefetch_pages_unnecessary: 4,
            ..OsStats::default()
        };
        assert!((s.unnecessary_issued_fraction() - 0.02).abs() < 1e-12);
    }
}
