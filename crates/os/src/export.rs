//! Chrome trace-event export: render a paging [`Trace`] as a JSON
//! timeline loadable by Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! Mapping:
//!
//! * Stalls with a known duration (hard faults, queue-full waits, retry
//!   backoff) become complete events (`ph: "X"`) spanning the wait.
//! * Prefetch lifecycles become async events correlated by span id:
//!   `"b"` at issue, an instant `"n"` at the disk read's exact arrival
//!   time, and `"e"` at the first demand touch. A span with no `"e"`
//!   was dropped, evicted, or never used — visible at a glance as an
//!   unterminated bar.
//! * Policy injections become zero-length async spans (`"b"` + `"e"` at
//!   the injection instant) under their own span id — allocated from
//!   the same counter as prefetch spans, so the two families never
//!   collide and `tracediff` can align injections across runs.
//! * Everything else becomes an instant event (`ph: "i"`).
//!
//! Timestamps are microseconds (the trace-event convention) with
//! sub-microsecond precision carried in the fraction.

use oocp_obs::Json;
use oocp_sim::time::Ns;

use crate::trace::{Trace, TraceEvent};

/// Thread ids used to group events into rows.
const TID_APP: u64 = 1; // demand path: faults and their stalls
const TID_HINT: u64 = 2; // hint path: prefetch/release decisions
const TID_OS: u64 = 3; // background: daemon, write-back, errors

fn us(ns: Ns) -> Json {
    Json::F64(ns as f64 / 1000.0)
}

fn event(name: &str, ph: &str, tid: u64, at: Ns, extra: Vec<(&'static str, Json)>) -> Json {
    let mut fields = vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str(ph.to_string())),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid)),
        ("ts", us(at)),
    ];
    fields.extend(extra);
    Json::obj(fields)
}

fn instant(name: &str, tid: u64, at: Ns, args: Json) -> Json {
    event(
        name,
        "i",
        tid,
        at,
        vec![("s", Json::Str("t".into())), ("args", args)],
    )
}

/// A complete event spanning the `dur` nanoseconds *ending* at `at`
/// (the machine stamps stall records when the wait finishes).
fn complete(name: &str, tid: u64, at: Ns, dur: Ns, args: Json) -> Json {
    event(
        name,
        "X",
        tid,
        at.saturating_sub(dur),
        vec![("dur", us(dur)), ("args", args)],
    )
}

/// An async prefetch-lifecycle event correlated by span id.
fn span_event(ph: &str, at: Ns, span: u64, args: Json) -> Json {
    event(
        "prefetch",
        ph,
        TID_HINT,
        at,
        vec![
            ("cat", Json::Str("prefetch".into())),
            ("id", Json::U64(span)),
            ("args", args),
        ],
    )
}

fn page_args(page: u64) -> Json {
    Json::obj([("page", Json::U64(page))])
}

/// Render the trace as a Chrome trace-event JSON document.
///
/// The returned string is a complete JSON object (`traceEvents` plus
/// thread-name metadata); write it to a file and open it in Perfetto.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(trace.len() + 8);
    for (tid, name) in [
        (TID_APP, "demand faults"),
        (TID_HINT, "prefetch/release"),
        (TID_OS, "pageout & errors"),
    ] {
        events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tid)),
            ("args", Json::obj([("name", Json::Str(name.to_string()))])),
        ]));
    }
    for rec in trace.iter() {
        let at = rec.at;
        let ev = match rec.event {
            TraceEvent::HardFault { page, waited } => {
                complete("demand_fault", TID_APP, at, waited, page_args(page))
            }
            TraceEvent::SoftFault { page } => instant("soft_fault", TID_APP, at, page_args(page)),
            TraceEvent::PrefetchIssue { page, count, span } => {
                // One async begin per page of the span; ids are
                // consecutive by construction (see the event's docs).
                for k in 1..count {
                    events.push(span_event("b", at, span + k, page_args(page + k)));
                }
                span_event("b", at, span, page_args(page))
            }
            TraceEvent::PrefetchArrive {
                page,
                span,
                arrival,
            } => span_event("n", arrival, span, page_args(page)),
            TraceEvent::PrefetchConsume { page, span, late } => span_event(
                "e",
                at,
                span,
                Json::obj([("page", Json::U64(page)), ("late", Json::Bool(late))]),
            ),
            TraceEvent::PrefetchDrop { page } => {
                instant("prefetch_drop", TID_HINT, at, page_args(page))
            }
            TraceEvent::Release { page, count } => instant(
                "release",
                TID_HINT,
                at,
                Json::obj([("page", Json::U64(page)), ("count", Json::U64(count))]),
            ),
            TraceEvent::Eviction { page } => instant("eviction", TID_OS, at, page_args(page)),
            TraceEvent::Writeback { page } => instant("writeback", TID_OS, at, page_args(page)),
            TraceEvent::IoError { page, disk } => instant(
                "io_error",
                TID_OS,
                at,
                Json::obj([
                    ("page", page.map_or(Json::Null, Json::U64)),
                    ("disk", Json::U64(disk as u64)),
                ]),
            ),
            TraceEvent::IoRetry { page, wait } => {
                complete("io_retry", TID_OS, at, wait, page_args(page))
            }
            TraceEvent::HintDropOnError { page, count } => instant(
                "hint_drop_io_error",
                TID_HINT,
                at,
                Json::obj([("page", Json::U64(page)), ("count", Json::U64(count))]),
            ),
            TraceEvent::HintDropQueueFull { page, count } => instant(
                "hint_drop_queue_full",
                TID_HINT,
                at,
                Json::obj([("page", Json::U64(page)), ("count", Json::U64(count))]),
            ),
            TraceEvent::HintDropQuota { page, tenant } => instant(
                "hint_drop_quota",
                TID_HINT,
                at,
                Json::obj([
                    ("page", Json::U64(page)),
                    ("tenant", Json::U64(tenant as u64)),
                ]),
            ),
            TraceEvent::HintDropPressure { page, tenant } => instant(
                "hint_drop_pressure",
                TID_HINT,
                at,
                Json::obj([
                    ("page", Json::U64(page)),
                    ("tenant", Json::U64(tenant as u64)),
                ]),
            ),
            TraceEvent::QueueFullWait { page, disk, wait } => complete(
                "queue_full_wait",
                TID_APP,
                at,
                wait,
                Json::obj([("page", Json::U64(page)), ("disk", Json::U64(disk as u64))]),
            ),
            TraceEvent::BitvecResync { fixed } => instant(
                "bitvec_resync",
                TID_OS,
                at,
                Json::obj([("fixed", Json::U64(fixed))]),
            ),
            TraceEvent::DegradedEnter => instant("degraded_enter", TID_OS, at, Json::obj([])),
            TraceEvent::DegradedExit => instant("degraded_exit", TID_OS, at, Json::obj([])),
            TraceEvent::PolicyInject { page, count, span } => {
                // A policy injection is a first-class zero-length async
                // span in the same id family as prefetch lifecycles, so
                // tracediff aligns injections across runs instead of
                // skipping instants.
                let args = Json::obj([("page", Json::U64(page)), ("count", Json::U64(count))]);
                let fields = |args| {
                    vec![
                        ("cat", Json::Str("policy".into())),
                        ("id", Json::U64(span)),
                        ("args", args),
                    ]
                };
                events.push(event(
                    "policy_inject",
                    "b",
                    TID_HINT,
                    at,
                    fields(args.clone()),
                ));
                event("policy_inject", "e", TID_HINT, at, fields(args))
            }
        };
        events.push(ev);
    }
    let doc = Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
        ("dropped_records", Json::U64(trace.dropped())),
    ]);
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(64);
        t.push(
            5_000,
            TraceEvent::PrefetchIssue {
                page: 10,
                count: 2,
                span: 1,
            },
        );
        t.push(
            9_000,
            TraceEvent::PrefetchArrive {
                page: 10,
                span: 1,
                arrival: 8_500,
            },
        );
        t.push(
            12_000,
            TraceEvent::PrefetchConsume {
                page: 10,
                span: 1,
                late: false,
            },
        );
        t.push(
            20_000,
            TraceEvent::HardFault {
                page: 3,
                waited: 6_000,
            },
        );
        t.push(
            21_000,
            TraceEvent::IoError {
                page: None,
                disk: 2,
            },
        );
        t
    }

    #[test]
    fn export_is_valid_json_with_one_event_per_record() {
        let json = chrome_trace_json(&sample_trace());
        let doc = oocp_obs::json::parse(&json).expect("export must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 thread-name metadata + 2 begins (span 1 and 2) + arrive +
        // consume + fault + io_error.
        assert_eq!(events.len(), 3 + 2 + 1 + 1 + 1 + 1);
        assert_eq!(doc.get("dropped_records").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn prefetch_spans_correlate_by_id() {
        let json = chrome_trace_json(&sample_trace());
        let doc = oocp_obs::json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phase_of = |ph: &str| -> Vec<u64> {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .filter_map(|e| e.get("id").and_then(|i| i.as_u64()))
                .collect()
        };
        let mut begins = phase_of("b");
        begins.sort_unstable();
        assert_eq!(begins, vec![1, 2], "a 2-page span opens ids 1 and 2");
        assert_eq!(phase_of("n"), vec![1], "arrival instant on span 1");
        assert_eq!(phase_of("e"), vec![1], "consume closes span 1");
    }

    #[test]
    fn stall_events_span_the_wait() {
        let json = chrome_trace_json(&sample_trace());
        let doc = oocp_obs::json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let fault = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("demand_fault"))
            .unwrap();
        // Stamped at 20 us after a 6 us wait: the X event starts at 14.
        assert_eq!(fault.get("ts").unwrap().as_f64(), Some(14.0));
        assert_eq!(fault.get("dur").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    fn arrival_uses_the_true_completion_time() {
        let json = chrome_trace_json(&sample_trace());
        let doc = oocp_obs::json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let arrive = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("n"))
            .unwrap();
        // Observed (settled) at 9 us, but the read completed at 8.5 us.
        assert_eq!(arrive.get("ts").unwrap().as_f64(), Some(8.5));
    }

    #[test]
    fn pageless_io_error_exports_null_page() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.contains("\"page\":null"));
    }

    #[test]
    fn policy_inject_exports_as_span_pair_and_aligns() {
        let mut t = Trace::new(64);
        t.push(
            1_000,
            TraceEvent::PrefetchIssue {
                page: 5,
                count: 1,
                span: 1,
            },
        );
        t.push(
            2_000,
            TraceEvent::PolicyInject {
                page: 40,
                count: 8,
                span: 2,
            },
        );
        let doc = oocp_obs::json::parse(&chrome_trace_json(&t)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let inj: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("policy_inject"))
            .collect();
        assert_eq!(inj.len(), 2, "one begin + one end, no instant");
        for e in &inj {
            assert_eq!(e.get("id").and_then(|i| i.as_u64()), Some(2));
            assert_eq!(e.get("ts").unwrap().as_f64(), Some(2.0));
        }
        let phases: Vec<&str> = inj
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(phases, ["b", "e"]);
        // The tracediff consumer aligns the injection span exactly as
        // the in-process view does, with no id collision against the
        // prefetch lifecycle span.
        let from_json = oocp_obs::tracediff::index_spans(&doc).unwrap();
        let in_process = t.span_lifecycles();
        assert_eq!(from_json.len(), 2);
        assert_eq!(in_process.len(), 2);
        for (j, p) in from_json.iter().zip(&in_process) {
            assert_eq!(j.id, p.span);
            assert_eq!(j.page, Some(p.page));
            assert_eq!(
                j.begin.map(|us| (us * 1000.0) as u64),
                p.issued_at,
                "span {}: issue time",
                p.span
            );
            assert_eq!(j.end.map(|us| (us * 1000.0) as u64), p.consumed_at);
            assert_eq!(j.late, p.late);
        }
    }

    #[test]
    fn exported_spans_match_in_process_alignment() {
        // The tracediff consumer (`oocp_obs::tracediff::index_spans`)
        // must reconstruct from the exported JSON exactly the spans the
        // in-process alignment sees.
        let trace = sample_trace();
        let doc = oocp_obs::json::parse(&chrome_trace_json(&trace)).unwrap();
        let from_json = oocp_obs::tracediff::index_spans(&doc).unwrap();
        let in_process = trace.span_lifecycles();
        assert_eq!(from_json.len(), in_process.len());
        for (j, p) in from_json.iter().zip(&in_process) {
            assert_eq!(j.id, p.span);
            assert_eq!(j.page, Some(p.page));
            assert_eq!(
                j.begin.is_some(),
                p.issued_at.is_some(),
                "span {}: issue presence",
                p.span
            );
            assert_eq!(j.arrive.map(|us| (us * 1000.0) as u64), p.arrival);
            assert_eq!(j.end.map(|us| (us * 1000.0) as u64), p.consumed_at);
            assert_eq!(j.late, p.late);
        }
    }
}
