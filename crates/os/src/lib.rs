//! Operating-system substrate: paged virtual memory with non-binding
//! prefetch and release hints.
//!
//! This crate models the Hurricane-side half of the paper: a paged VM
//! whose demand faults cost the full disk latency, extended with the
//! paper's two hint operations:
//!
//! * **prefetch** — a non-binding request to bring pages into memory.
//!   Already-resident pages make the hint (partially) unnecessary; pages
//!   on the free list are *reclaimed* (useful, no I/O); hints are dropped
//!   entirely when no memory is free.
//! * **release** — a hint that pages will not be referenced again soon.
//!   Released pages move to the front of the free list (dirty ones are
//!   cleaned first) but stay mapped until their frame is reused, so a
//!   premature release costs only a soft fault.
//!
//! The machine keeps the *data* of the whole virtual address space in a
//! backing store so that programs really execute; page residency is pure
//! metadata driving the timing model. Every simulated nanosecond is
//! attributed to user / system-fault / system-prefetch / idle, matching
//! the stacked bars of Figure 3(a).

pub mod bitvec;
pub mod error;
pub mod export;
pub mod machine;
pub mod metrics;
pub mod params;
pub mod parity;
pub mod posix;
pub mod stats;
pub mod store;
pub mod tenant;
pub mod trace;

pub use bitvec::ResidencyBits;
pub use error::{ConfigError, FlushError, OsError};
pub use export::chrome_trace_json;
// Fault-injection types, re-exported so layers above the OS (the
// run-time filter, the bench harness) can build plans without a direct
// disk-crate dependency.
pub use machine::{DurableRecord, Machine, RecoveryReport, Segment, Touch};
pub use metrics::{MetricsReport, ObsMetrics};
// Observability types that appear in this crate's public API, re-
// exported for the same reason as the fault-injection types above.
pub use oocp_disk::{
    Brownout, CrashPoint, CrashSpec, DiskDeath, FaultPlan, IoError, PressureStorm, SchedConfig,
    SchedPolicy,
};
pub use oocp_obs::{
    LateCause, LatencyHist, LedgerCounts, MachineBucket, MachineProf, MetricsRegistry,
    PrefetchLedger, TimeAttribution, TimeSeriesRing, WhylateSummary,
};
// Prefetch-policy types, re-exported so the runtime and bench layers
// can select and install policies without a direct policy-crate
// dependency.
pub use oocp_policy::{
    HistoryReplay, PolicyActions, PolicyCounters, PolicyKind, PrefetchPolicy, TouchKind,
};
pub use params::{MachineParams, Redundancy};
pub use parity::ParityStore;
pub use posix::{madvise, Advice, MadviseError};
pub use stats::{FaultKind, OsStats};
pub use store::{page_checksum, DurableStore, SECTOR_BYTES};
pub use tenant::{
    PressureLevel, QosClass, TenantId, TenantSpec, TenantStats, ELEVATED_BEST_EFFORT_SLOTS,
};
pub use trace::{SpanLifecycle, Trace, TraceEvent, TraceRecord};
