//! The durable page store: what is actually *on the platters*.
//!
//! The machine's `data` vector is the live in-memory image of the
//! address space; fault-free runs treat it as authoritative and never
//! model on-disk bytes separately. Crash simulation needs the
//! distinction: after a power loss, only what had durably landed
//! survives. [`DurableStore`] holds that second copy — one page image
//! plus one stored checksum per page — updated exactly when the crash
//! model decides a write landed (fully or torn).
//!
//! Every persisted page carries an FNV-1a checksum "stored with the
//! sector metadata". A torn write lands a sector prefix of the new
//! image while keeping the *old* checksum, so corruption is detectable
//! on read — the hook both recovery and the background scrubber hang
//! off.

/// Sector size of the torn-write model: a 4 KB page is eight 512-byte
/// sectors, and a torn write lands an arbitrary prefix of them.
pub const SECTOR_BYTES: u64 = 512;

/// FNV-1a over a page image — the checksum persisted beside each page.
pub fn page_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Durable (on-media) image of the whole address space.
pub struct DurableStore {
    page_bytes: u64,
    images: Vec<u8>,
    checksums: Vec<u64>,
    /// Whether the initial-state snapshot has been taken (lazily, at
    /// the first timed access, so workload `init()` pokes count as the
    /// pre-existing on-disk data set).
    snapshotted: bool,
}

impl DurableStore {
    /// An all-zero store for `total_pages` pages (matching a fresh
    /// machine's zeroed backing file).
    pub fn new(total_pages: u64, page_bytes: u64) -> Self {
        let zero_sum = page_checksum(&vec![0u8; page_bytes as usize]);
        Self {
            page_bytes,
            images: vec![0u8; (total_pages * page_bytes) as usize],
            checksums: vec![zero_sum; total_pages as usize],
            snapshotted: false,
        }
    }

    /// Number of pages in the store.
    pub fn total_pages(&self) -> u64 {
        self.checksums.len() as u64
    }

    /// Adopt `data` as the durable baseline, once. Called on the first
    /// timed access so everything the workload's `init()` wrote
    /// untimed is treated as already on disk — the state a real system
    /// would have loaded the input from.
    pub fn ensure_snapshot(&mut self, data: &[u8]) {
        if self.snapshotted {
            return;
        }
        self.snapshotted = true;
        self.images.copy_from_slice(data);
        for p in 0..self.total_pages() {
            self.checksums[p as usize] = page_checksum(self.page(p));
        }
    }

    fn range(&self, vpage: u64) -> std::ops::Range<usize> {
        let start = (vpage * self.page_bytes) as usize;
        start..start + self.page_bytes as usize
    }

    /// The durable image of one page.
    pub fn page(&self, vpage: u64) -> &[u8] {
        &self.images[self.range(vpage)]
    }

    /// The stored checksum of one page.
    pub fn stored_checksum(&self, vpage: u64) -> u64 {
        self.checksums[vpage as usize]
    }

    /// A full, atomic durable landing: new image plus fresh checksum.
    pub fn write_page(&mut self, vpage: u64, bytes: &[u8]) {
        let r = self.range(vpage);
        self.images[r].copy_from_slice(bytes);
        self.checksums[vpage as usize] = page_checksum(bytes);
    }

    /// A torn landing: the first `sectors` 512-byte sectors of `bytes`
    /// land over the old image, the rest keep their old content, and —
    /// crucially — the *old* stored checksum survives, so any partial
    /// landing (`1..sectors_per_page`) is detectable by verification.
    /// `sectors == 0` lands nothing; a full count degenerates to
    /// [`DurableStore::write_page`].
    pub fn tear_page(&mut self, vpage: u64, bytes: &[u8], sectors: u64) {
        let per_page = self.page_bytes / SECTOR_BYTES;
        if sectors == 0 {
            return;
        }
        if sectors >= per_page {
            self.write_page(vpage, bytes);
            return;
        }
        let torn = (sectors * SECTOR_BYTES) as usize;
        let start = (vpage * self.page_bytes) as usize;
        self.images[start..start + torn].copy_from_slice(&bytes[..torn]);
        // Old checksum kept: now inconsistent with the image.
    }

    /// Whether the stored checksum matches the current image.
    pub fn verify(&self, vpage: u64) -> bool {
        page_checksum(self.page(vpage)) == self.checksums[vpage as usize]
    }

    /// Flip bits in a durable page without touching its checksum —
    /// latent media corruption, for scrubber tests.
    pub fn corrupt(&mut self, vpage: u64) {
        let r = self.range(vpage);
        self.images[r.start] ^= 0xFF;
        self.images[r.start + 1] ^= 0xA5;
    }

    /// Move the page images out (recovery hands them to the fresh
    /// machine as its in-memory data).
    pub fn images(&self) -> &[u8] {
        &self.images
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_taken_once() {
        let mut s = DurableStore::new(2, 4096);
        let mut data = vec![7u8; 2 * 4096];
        s.ensure_snapshot(&data);
        assert_eq!(s.page(0)[0], 7);
        assert!(s.verify(0) && s.verify(1));
        data[0] = 9;
        s.ensure_snapshot(&data);
        assert_eq!(s.page(0)[0], 7, "second snapshot is a no-op");
    }

    #[test]
    fn full_write_verifies_and_partial_tear_does_not() {
        let mut s = DurableStore::new(1, 4096);
        let new = vec![0xABu8; 4096];
        s.write_page(0, &new);
        assert!(s.verify(0));
        let newer = vec![0xCDu8; 4096];
        s.tear_page(0, &newer, 3);
        assert!(!s.verify(0), "torn page must fail its stored checksum");
        assert_eq!(s.page(0)[3 * 512 - 1], 0xCD);
        assert_eq!(s.page(0)[3 * 512], 0xAB, "tail keeps old image");
        // A zero-sector tear lands nothing; a full tear is atomic.
        let mut s = DurableStore::new(1, 4096);
        s.write_page(0, &new);
        s.tear_page(0, &newer, 0);
        assert!(s.verify(0) && s.page(0)[0] == 0xAB);
        s.tear_page(0, &newer, 8);
        assert!(s.verify(0) && s.page(0)[0] == 0xCD);
    }

    #[test]
    fn corruption_hook_breaks_verification() {
        let mut s = DurableStore::new(1, 4096);
        assert!(s.verify(0));
        s.corrupt(0);
        assert!(!s.verify(0));
    }
}
