//! The shared user/kernel residency bit vector.
//!
//! The paper's OS "provides applications with a single physical memory
//! page that is shared with the OS. ... The shared page is used as a bit
//! vector with each bit representing one or more contiguous pages of the
//! application's virtual memory space (a set bit indicates that the
//! corresponding page is in memory). The granularity of the bit vector is
//! determined by the run-time layer at program start-up."
//!
//! We model the single shared page faithfully: the vector's capacity is
//! one page worth of bits, and when the address space exceeds that, each
//! bit covers `granularity` contiguous pages. Coverage coarser than one
//! page makes the filter *conservative in the cheap direction*: the OS
//! clears a bit whenever any covered page leaves memory, so the run-time
//! layer may issue a redundant system call but never wrongly believes an
//! absent page to be resident for filtering purposes (within a covered
//! group, a set bit can still over-claim; the hints are non-binding, so
//! the only consequence is a later fault, never incorrect data).

/// Shared residency bit vector (one page of bits).
#[derive(Clone, Debug)]
pub struct ResidencyBits {
    words: Vec<u64>,
    granularity: u64,
    pages_covered: u64,
    /// Per-bit count of resident pages in the covered group, used to
    /// clear a coarse bit only when its last resident page leaves.
    counts: Vec<u16>,
}

impl ResidencyBits {
    /// Create a vector covering `total_pages` of virtual address space,
    /// constrained to `page_bytes * 8` bits (the single shared page).
    ///
    /// The granularity (pages per bit) is the smallest power of two that
    /// makes the space fit, exactly as the run-time layer would choose at
    /// registration time.
    pub fn new(total_pages: u64, page_bytes: u64) -> Self {
        let max_bits = page_bytes * 8;
        let mut granularity = 1u64;
        while total_pages.div_ceil(granularity) > max_bits {
            granularity *= 2;
        }
        let nbits = total_pages.div_ceil(granularity).max(1);
        Self {
            words: vec![0; nbits.div_ceil(64) as usize],
            granularity,
            pages_covered: total_pages,
            counts: vec![0; nbits as usize],
        }
    }

    /// Pages covered by each bit.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Total pages of address space covered.
    pub fn pages_covered(&self) -> u64 {
        self.pages_covered
    }

    fn bit_of(&self, page: u64) -> usize {
        debug_assert!(page < self.pages_covered, "page beyond covered space");
        (page / self.granularity) as usize
    }

    /// Whether the bit covering `page` is set (run-time layer's view of
    /// "believed to be in memory").
    pub fn test(&self, page: u64) -> bool {
        let b = self.bit_of(page);
        self.words[b / 64] >> (b % 64) & 1 == 1
    }

    /// OS-side: note that `page` became resident (prefetch issue or fault
    /// service sets the bit).
    pub fn note_resident(&mut self, page: u64) {
        let b = self.bit_of(page);
        if self.counts[b] == 0 {
            self.words[b / 64] |= 1 << (b % 64);
        }
        self.counts[b] = self.counts[b].saturating_add(1);
    }

    /// OS-side: note that `page` left memory (release or reclaim clears
    /// the bit once no covered page remains resident).
    pub fn note_gone(&mut self, page: u64) {
        let b = self.bit_of(page);
        debug_assert!(self.counts[b] > 0, "note_gone without note_resident");
        self.counts[b] = self.counts[b].saturating_sub(1);
        if self.counts[b] == 0 {
            self.words[b / 64] &= !(1 << (b % 64));
        }
    }

    /// Number of set bits (diagnostic).
    pub fn set_bits(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_granularity_when_space_fits() {
        let v = ResidencyBits::new(1000, 4096);
        assert_eq!(v.granularity(), 1);
    }

    #[test]
    fn granularity_scales_to_fit_one_page_of_bits() {
        let bits_per_page = 4096 * 8;
        let v = ResidencyBits::new(bits_per_page * 4, 4096);
        assert_eq!(v.granularity(), 4);
        // And a huge space still fits in one page of bits.
        let v = ResidencyBits::new(bits_per_page * 1000, 4096);
        assert!(v.granularity() >= 1000 / 2);
        assert!((bits_per_page * 1000).div_ceil(v.granularity()) <= bits_per_page);
    }

    #[test]
    fn set_test_clear_roundtrip() {
        let mut v = ResidencyBits::new(128, 4096);
        assert!(!v.test(37));
        v.note_resident(37);
        assert!(v.test(37));
        v.note_gone(37);
        assert!(!v.test(37));
    }

    #[test]
    fn coarse_bit_clears_only_when_group_empty() {
        // Force granularity 2 with a tiny "page" of 8 bytes = 64 bits.
        let mut v = ResidencyBits::new(128, 8);
        assert_eq!(v.granularity(), 2);
        v.note_resident(10);
        v.note_resident(11); // same bit
        assert!(v.test(10) && v.test(11));
        v.note_gone(10);
        assert!(v.test(11), "bit must stay set while page 11 is resident");
        v.note_gone(11);
        assert!(!v.test(10) && !v.test(11));
    }

    #[test]
    fn set_bits_counts_distinct_groups() {
        let mut v = ResidencyBits::new(256, 4096);
        v.note_resident(0);
        v.note_resident(1);
        v.note_resident(200);
        assert_eq!(v.set_bits(), 3);
    }
}
