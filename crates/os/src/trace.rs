//! Event tracing: a bounded log of paging activity.
//!
//! The paper's authors "added extensive instrumentation to enable us to
//! produce the detailed statistics shown in subsequent sections"; this
//! module is the analogous facility. When enabled, the machine records
//! every paging-relevant event with its simulated timestamp into a
//! bounded ring buffer, which experiments and the `oocpc --trace` flag
//! can dump as a timeline.

use oocp_sim::time::Ns;

/// One traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Demand fault that went to disk (page, waited nanoseconds).
    HardFault {
        /// Faulting page.
        page: u64,
        /// Nanoseconds stalled waiting for the read.
        waited: Ns,
    },
    /// Reclaim from the free list (no disk I/O).
    SoftFault {
        /// Faulting page.
        page: u64,
    },
    /// Prefetch pages issued to disk.
    PrefetchIssue {
        /// First page of the issued span.
        page: u64,
        /// Pages in the span.
        count: u64,
    },
    /// Prefetch page dropped for lack of memory.
    PrefetchDrop {
        /// The dropped page.
        page: u64,
    },
    /// Pages released to the free list.
    Release {
        /// First page.
        page: u64,
        /// Pages released.
        count: u64,
    },
    /// Page evicted by the pageout daemon's clock scan.
    Eviction {
        /// The evicted page.
        page: u64,
    },
    /// Dirty page scheduled for write-back.
    Writeback {
        /// The written page.
        page: u64,
    },
    /// A disk request failed (injected fault observed by the OS).
    IoError {
        /// Page whose I/O failed (u64::MAX for non-page requests).
        page: u64,
        /// The failing disk.
        disk: usize,
    },
    /// A failed demand read or write-back is being retried after a
    /// backoff wait.
    IoRetry {
        /// Page being retried.
        page: u64,
        /// Nanoseconds waited before this attempt.
        wait: Ns,
    },
    /// A prefetch read failed and the hint was dropped silently.
    HintDropOnError {
        /// First page of the failed run.
        page: u64,
        /// Pages in the failed run.
        count: u64,
    },
    /// A prefetch hint was dropped because the disk queue was full
    /// (scheduler backpressure; not counted as an I/O error).
    HintDropQueueFull {
        /// First page of the rejected run.
        page: u64,
        /// Pages in the rejected run.
        count: u64,
    },
    /// A demand read or write-back blocked until a disk-queue slot
    /// freed (scheduler backpressure; no retry budget consumed).
    QueueFullWait {
        /// Page whose request was blocked.
        page: u64,
        /// The saturated disk.
        disk: usize,
        /// Nanoseconds waited for the slot.
        wait: Ns,
    },
    /// The shared residency bit vector was rebuilt from page states.
    BitvecResync {
        /// Stale bits cleared by the rebuild.
        fixed: u64,
    },
    /// The runtime entered degraded (demand-paging-only) mode.
    DegradedEnter,
    /// The runtime left degraded mode and resumed hinting.
    DegradedExit,
}

impl TraceEvent {
    /// Short tag for timeline rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::HardFault { .. } => "FAULT",
            TraceEvent::SoftFault { .. } => "SOFT",
            TraceEvent::PrefetchIssue { .. } => "PF",
            TraceEvent::PrefetchDrop { .. } => "DROP",
            TraceEvent::Release { .. } => "REL",
            TraceEvent::Eviction { .. } => "EVICT",
            TraceEvent::Writeback { .. } => "WB",
            TraceEvent::IoError { .. } => "IOERR",
            TraceEvent::IoRetry { .. } => "RETRY",
            TraceEvent::HintDropOnError { .. } => "HDROP",
            TraceEvent::HintDropQueueFull { .. } => "QDROP",
            TraceEvent::QueueFullWait { .. } => "QFULL",
            TraceEvent::BitvecResync { .. } => "RESYNC",
            TraceEvent::DegradedEnter => "DEGR+",
            TraceEvent::DegradedExit => "DEGR-",
        }
    }
}

/// A timestamped trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: Ns,
    /// The event.
    pub event: TraceEvent,
}

/// Bounded ring buffer of trace records.
///
/// When full, the oldest records are overwritten (the usual flight-
/// recorder behavior); [`Trace::dropped`] reports how many were lost.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    buf: Vec<TraceRecord>,
    capacity: usize,
    start: usize,
    dropped: u64,
}

impl Trace {
    /// Create a trace holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(1),
            start: 0,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, at: Ns, event: TraceEvent) {
        let rec = TraceRecord { at, event };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.start] = rec;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records lost to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records in chronological order.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.start..]);
        out.extend_from_slice(&self.buf[..self.start]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: u64) -> TraceEvent {
        TraceEvent::SoftFault { page: p }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut t = Trace::new(4);
        for i in 0..3 {
            t.push(i * 10, ev(i));
        }
        let r = t.records();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].at, 0);
        assert_eq!(r[2].at, 20);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.push(i, ev(i));
        }
        let r = t.records();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].at, 2, "oldest surviving record");
        assert_eq!(r[2].at, 4);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn tags_are_distinct() {
        use std::collections::HashSet;
        let tags: HashSet<_> = [
            TraceEvent::HardFault { page: 0, waited: 0 }.tag(),
            TraceEvent::SoftFault { page: 0 }.tag(),
            TraceEvent::PrefetchIssue { page: 0, count: 1 }.tag(),
            TraceEvent::PrefetchDrop { page: 0 }.tag(),
            TraceEvent::Release { page: 0, count: 1 }.tag(),
            TraceEvent::Eviction { page: 0 }.tag(),
            TraceEvent::Writeback { page: 0 }.tag(),
            TraceEvent::IoError { page: 0, disk: 0 }.tag(),
            TraceEvent::IoRetry { page: 0, wait: 0 }.tag(),
            TraceEvent::HintDropOnError { page: 0, count: 1 }.tag(),
            TraceEvent::HintDropQueueFull { page: 0, count: 1 }.tag(),
            TraceEvent::QueueFullWait {
                page: 0,
                disk: 0,
                wait: 0,
            }
            .tag(),
            TraceEvent::BitvecResync { fixed: 0 }.tag(),
            TraceEvent::DegradedEnter.tag(),
            TraceEvent::DegradedExit.tag(),
        ]
        .into_iter()
        .collect();
        assert_eq!(tags.len(), 15);
    }
}
