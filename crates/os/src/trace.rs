//! Event tracing: a bounded log of paging activity.
//!
//! The paper's authors "added extensive instrumentation to enable us to
//! produce the detailed statistics shown in subsequent sections"; this
//! module is the analogous facility. When enabled, the machine records
//! every paging-relevant event with its simulated timestamp into a
//! bounded ring buffer, which experiments and the `oocpc --trace` flag
//! can dump as a timeline.

use oocp_sim::time::Ns;

/// One traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Demand fault that went to disk (page, waited nanoseconds).
    HardFault {
        /// Faulting page.
        page: u64,
        /// Nanoseconds stalled waiting for the read.
        waited: Ns,
    },
    /// Reclaim from the free list (no disk I/O).
    SoftFault {
        /// Faulting page.
        page: u64,
    },
    /// Prefetch pages issued to disk.
    PrefetchIssue {
        /// First page of the issued span.
        page: u64,
        /// Pages in the span.
        count: u64,
        /// Span id of the first page. The remaining pages of the span
        /// hold consecutive ids `span + 1 .. span + count` (ids are
        /// allocated in page order at the issue decision), so one issue
        /// record names every lifecycle span it opens.
        span: u64,
    },
    /// A prefetch read completed and the page became resident.
    PrefetchArrive {
        /// The arrived page.
        page: u64,
        /// Lifecycle span id assigned at issue.
        span: u64,
        /// Exact simulated completion time of the disk read. The record
        /// itself is stamped when the OS first *observes* the completion
        /// (completions settle lazily), which keeps the ring
        /// chronological; this field carries the true arrival.
        arrival: Ns,
    },
    /// First demand touch of a prefetched page (the span's terminal
    /// consume).
    PrefetchConsume {
        /// The consumed page.
        page: u64,
        /// Lifecycle span id assigned at issue.
        span: u64,
        /// The touch found the read still in flight and stalled for the
        /// residual latency (a late prefetch).
        late: bool,
    },
    /// Prefetch page dropped for lack of memory.
    PrefetchDrop {
        /// The dropped page.
        page: u64,
    },
    /// Pages released to the free list.
    Release {
        /// First page.
        page: u64,
        /// Pages released.
        count: u64,
    },
    /// Page evicted by the pageout daemon's clock scan.
    Eviction {
        /// The evicted page.
        page: u64,
    },
    /// Dirty page scheduled for write-back.
    Writeback {
        /// The written page.
        page: u64,
    },
    /// A disk request failed (injected fault observed by the OS).
    IoError {
        /// Page whose I/O failed, or `None` for requests not tied to a
        /// single page.
        page: Option<u64>,
        /// The failing disk.
        disk: usize,
    },
    /// A failed demand read or write-back is being retried after a
    /// backoff wait.
    IoRetry {
        /// Page being retried.
        page: u64,
        /// Nanoseconds waited before this attempt.
        wait: Ns,
    },
    /// A prefetch read failed and the hint was dropped silently.
    HintDropOnError {
        /// First page of the failed run.
        page: u64,
        /// Pages in the failed run.
        count: u64,
    },
    /// A prefetch hint was dropped because the disk queue was full
    /// (scheduler backpressure; not counted as an I/O error).
    HintDropQueueFull {
        /// First page of the rejected run.
        page: u64,
        /// Pages in the rejected run.
        count: u64,
    },
    /// A demand read or write-back blocked until a disk-queue slot
    /// freed (scheduler backpressure; no retry budget consumed).
    QueueFullWait {
        /// Page whose request was blocked.
        page: u64,
        /// The saturated disk.
        disk: usize,
        /// Nanoseconds waited for the slot.
        wait: Ns,
    },
    /// A prefetch hint page was dropped because the issuing tenant's
    /// prefetch-slot or memory quota was exhausted.
    HintDropQuota {
        /// The page whose hint was dropped.
        page: u64,
        /// The tenant whose quota bound.
        tenant: u32,
    },
    /// A prefetch hint page was shed by the pressure arbiter (elevation
    /// clamp or brownout, in QoS order).
    HintDropPressure {
        /// The page whose hint was dropped.
        page: u64,
        /// The tenant whose hint was shed.
        tenant: u32,
    },
    /// The shared residency bit vector was rebuilt from page states.
    BitvecResync {
        /// Stale bits cleared by the rebuild.
        fixed: u64,
    },
    /// The runtime entered degraded (demand-paging-only) mode.
    DegradedEnter,
    /// The runtime left degraded mode and resumed hinting.
    DegradedExit,
    /// The installed prefetch policy injected a prefetch run (over and
    /// above the compiler's hints; charged no syscall time).
    PolicyInject {
        /// First page of the injected run.
        page: u64,
        /// Pages in the run.
        count: u64,
        /// Injection span id, allocated from the same counter as
        /// prefetch lifecycle spans so the two families never collide.
        /// The Chrome-trace exporter emits the injection as a
        /// first-class span under this id, which lets `tracediff`
        /// align injections across runs instead of skipping instants.
        span: u64,
    },
}

impl TraceEvent {
    /// Short tag for timeline rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::HardFault { .. } => "FAULT",
            TraceEvent::SoftFault { .. } => "SOFT",
            TraceEvent::PrefetchIssue { .. } => "PF",
            TraceEvent::PrefetchArrive { .. } => "PFARR",
            TraceEvent::PrefetchConsume { .. } => "PFUSE",
            TraceEvent::PrefetchDrop { .. } => "DROP",
            TraceEvent::Release { .. } => "REL",
            TraceEvent::Eviction { .. } => "EVICT",
            TraceEvent::Writeback { .. } => "WB",
            TraceEvent::IoError { .. } => "IOERR",
            TraceEvent::IoRetry { .. } => "RETRY",
            TraceEvent::HintDropOnError { .. } => "HDROP",
            TraceEvent::HintDropQueueFull { .. } => "QDROP",
            TraceEvent::HintDropQuota { .. } => "QUOTA",
            TraceEvent::HintDropPressure { .. } => "SHED",
            TraceEvent::QueueFullWait { .. } => "QFULL",
            TraceEvent::BitvecResync { .. } => "RESYNC",
            TraceEvent::DegradedEnter => "DEGR+",
            TraceEvent::DegradedExit => "DEGR-",
            TraceEvent::PolicyInject { .. } => "PINJ",
        }
    }
}

/// One prefetch lifecycle aligned by span id, reassembled from a
/// trace's issue/arrive/consume records.
///
/// Span ids are allocated in issue order, so two traces of the same
/// kernel can be compared lifecycle-by-lifecycle — the basis of the
/// perfgate tracediff (`oocp_obs::tracediff` does the same alignment on
/// exported Chrome traces; this is the in-process view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanLifecycle {
    /// Lifecycle span id.
    pub span: u64,
    /// Page the span covers.
    pub page: u64,
    /// When the hint was issued (`None` if the issue record was lost to
    /// ring overflow).
    pub issued_at: Option<Ns>,
    /// Exact disk-read completion time.
    pub arrival: Option<Ns>,
    /// First demand touch, when the page was used at all.
    pub consumed_at: Option<Ns>,
    /// Whether the first touch found the read still in flight.
    pub late: Option<bool>,
}

/// A timestamped trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: Ns,
    /// The event.
    pub event: TraceEvent,
}

/// Bounded ring buffer of trace records.
///
/// When full, the oldest records are overwritten (the usual flight-
/// recorder behavior); [`Trace::dropped`] reports how many were lost.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    buf: Vec<TraceRecord>,
    capacity: usize,
    start: usize,
    dropped: u64,
}

impl Trace {
    /// Create a trace holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(1),
            start: 0,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, at: Ns, event: TraceEvent) {
        let rec = TraceRecord { at, event };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.start] = rec;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records lost to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate the records in chronological order without copying the
    /// buffer — the ring's two slices are chained in place. Prefer this
    /// over [`Trace::records`] anywhere a pass over the timeline
    /// suffices (rendering, counting, export).
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// Records in chronological order, as an owned vector.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.iter().copied().collect()
    }

    /// Reassemble the prefetch lifecycles, aligned by span id and
    /// sorted ascending.
    ///
    /// A multi-page [`TraceEvent::PrefetchIssue`] opens `count`
    /// consecutive spans (ids `span .. span + count`, one per page);
    /// arrive and consume records then attach to their span. Records
    /// referring to spans whose issue fell off the ring still produce a
    /// lifecycle, with `issued_at` unknown.
    pub fn span_lifecycles(&self) -> Vec<SpanLifecycle> {
        let mut spans: Vec<SpanLifecycle> = Vec::new();
        fn entry(spans: &mut Vec<SpanLifecycle>, span: u64, page: u64) -> &mut SpanLifecycle {
            match spans.iter().position(|s| s.span == span) {
                Some(i) => &mut spans[i],
                None => {
                    spans.push(SpanLifecycle {
                        span,
                        page,
                        ..SpanLifecycle::default()
                    });
                    spans.last_mut().expect("just pushed")
                }
            }
        }
        for rec in self.iter() {
            match rec.event {
                TraceEvent::PrefetchIssue { page, count, span } => {
                    for k in 0..count {
                        entry(&mut spans, span + k, page + k).issued_at = Some(rec.at);
                    }
                }
                TraceEvent::PrefetchArrive {
                    page,
                    span,
                    arrival,
                } => entry(&mut spans, span, page).arrival = Some(arrival),
                TraceEvent::PrefetchConsume { page, span, late } => {
                    let e = entry(&mut spans, span, page);
                    e.consumed_at = Some(rec.at);
                    e.late = Some(late);
                }
                TraceEvent::PolicyInject { page, span, .. } => {
                    // Injections are zero-length spans: opened and
                    // closed at the decision instant, never late.
                    let e = entry(&mut spans, span, page);
                    e.issued_at = Some(rec.at);
                    e.consumed_at = Some(rec.at);
                }
                _ => {}
            }
        }
        spans.sort_by_key(|s| s.span);
        spans
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter =
        std::iter::Chain<std::slice::Iter<'a, TraceRecord>, std::slice::Iter<'a, TraceRecord>>;

    fn into_iter(self) -> Self::IntoIter {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: u64) -> TraceEvent {
        TraceEvent::SoftFault { page: p }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut t = Trace::new(4);
        for i in 0..3 {
            t.push(i * 10, ev(i));
        }
        let r = t.records();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].at, 0);
        assert_eq!(r[2].at, 20);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.push(i, ev(i));
        }
        let r = t.records();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].at, 2, "oldest surviving record");
        assert_eq!(r[2].at, 4);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn tags_are_distinct() {
        use std::collections::HashSet;
        let tags: HashSet<_> = [
            TraceEvent::HardFault { page: 0, waited: 0 }.tag(),
            TraceEvent::SoftFault { page: 0 }.tag(),
            TraceEvent::PrefetchIssue {
                page: 0,
                count: 1,
                span: 1,
            }
            .tag(),
            TraceEvent::PrefetchArrive {
                page: 0,
                span: 1,
                arrival: 0,
            }
            .tag(),
            TraceEvent::PrefetchConsume {
                page: 0,
                span: 1,
                late: false,
            }
            .tag(),
            TraceEvent::PrefetchDrop { page: 0 }.tag(),
            TraceEvent::Release { page: 0, count: 1 }.tag(),
            TraceEvent::Eviction { page: 0 }.tag(),
            TraceEvent::Writeback { page: 0 }.tag(),
            TraceEvent::IoError {
                page: Some(0),
                disk: 0,
            }
            .tag(),
            TraceEvent::IoRetry { page: 0, wait: 0 }.tag(),
            TraceEvent::HintDropOnError { page: 0, count: 1 }.tag(),
            TraceEvent::HintDropQueueFull { page: 0, count: 1 }.tag(),
            TraceEvent::HintDropQuota { page: 0, tenant: 0 }.tag(),
            TraceEvent::HintDropPressure { page: 0, tenant: 0 }.tag(),
            TraceEvent::QueueFullWait {
                page: 0,
                disk: 0,
                wait: 0,
            }
            .tag(),
            TraceEvent::BitvecResync { fixed: 0 }.tag(),
            TraceEvent::DegradedEnter.tag(),
            TraceEvent::DegradedExit.tag(),
        ]
        .into_iter()
        .collect();
        assert_eq!(tags.len(), 19);
    }

    #[test]
    fn iter_matches_records_across_wraparound() {
        let mut t = Trace::new(4);
        for i in 0..11 {
            t.push(i * 7, ev(i));
        }
        let from_iter: Vec<TraceRecord> = t.iter().copied().collect();
        assert_eq!(from_iter, t.records());
        assert_eq!(from_iter.len(), 4);
        assert!(from_iter.windows(2).all(|w| w[0].at < w[1].at));
        assert_eq!(t.dropped(), 7);
        // The borrowing IntoIterator sees the same sequence.
        let from_ref: Vec<TraceRecord> = (&t).into_iter().copied().collect();
        assert_eq!(from_ref, from_iter);
    }

    #[test]
    fn span_lifecycles_align_by_id() {
        let mut t = Trace::new(64);
        t.push(
            5,
            TraceEvent::PrefetchIssue {
                page: 10,
                count: 3,
                span: 7,
            },
        );
        t.push(
            9,
            TraceEvent::PrefetchArrive {
                page: 11,
                span: 8,
                arrival: 8,
            },
        );
        t.push(
            12,
            TraceEvent::PrefetchConsume {
                page: 11,
                span: 8,
                late: true,
            },
        );
        // Arrive for a span whose issue was never recorded.
        t.push(
            20,
            TraceEvent::PrefetchArrive {
                page: 99,
                span: 42,
                arrival: 19,
            },
        );
        let spans = t.span_lifecycles();
        assert_eq!(spans.len(), 4, "3-page issue opens 3 spans, plus orphan");
        assert_eq!(spans[0].span, 7);
        assert_eq!(spans[0].page, 10);
        assert_eq!(spans[0].issued_at, Some(5));
        assert_eq!(spans[0].arrival, None);
        assert_eq!(spans[1].span, 8);
        assert_eq!(spans[1].arrival, Some(8), "true completion time, not stamp");
        assert_eq!(spans[1].consumed_at, Some(12));
        assert_eq!(spans[1].late, Some(true));
        assert_eq!(spans[3].span, 42);
        assert_eq!(spans[3].issued_at, None, "orphan keeps unknown issue");
    }

    #[test]
    fn policy_injections_are_zero_length_spans() {
        let mut t = Trace::new(64);
        t.push(
            5,
            TraceEvent::PrefetchIssue {
                page: 10,
                count: 1,
                span: 1,
            },
        );
        t.push(
            8,
            TraceEvent::PolicyInject {
                page: 20,
                count: 4,
                span: 2,
            },
        );
        let spans = t.span_lifecycles();
        assert_eq!(spans.len(), 2, "injection opens exactly one span");
        assert_eq!(spans[1].span, 2);
        assert_eq!(spans[1].page, 20);
        assert_eq!(spans[1].issued_at, Some(8));
        assert_eq!(spans[1].consumed_at, Some(8), "closed at the instant");
        assert_eq!(spans[1].late, None, "injections are never late");
    }

    #[test]
    fn dropped_counts_every_overwrite_exactly() {
        let mut t = Trace::new(2);
        assert_eq!(t.dropped(), 0);
        t.push(0, ev(0));
        t.push(1, ev(1));
        assert_eq!(t.dropped(), 0, "filling to capacity drops nothing");
        for i in 2..100 {
            t.push(i, ev(i));
        }
        assert_eq!(t.dropped(), 98);
        assert_eq!(t.len(), 2);
        let r = t.records();
        assert_eq!(r[0].at, 98);
        assert_eq!(r[1].at, 99);
    }
}
