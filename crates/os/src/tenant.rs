//! Multi-tenant policy types: per-tenant quotas, QoS classes, and the
//! global pressure levels the arbiter sheds load by.
//!
//! The paper's machine hosts one application; ROADMAP item 1 asks what
//! happens when hundreds of co-scheduled programs share the free list
//! and the disk array. The types here describe *policy* only — the
//! mechanisms (per-tenant residency bits, quota-bounded frame
//! allocation, pressure-ordered hint shedding, tenant-aware disk
//! scheduling) live in [`crate::Machine`] and the disk crate. A machine
//! that never registers a tenant behaves bit-for-bit as before: the
//! implicit solo tenant is [`QosClass::Guaranteed`] with unlimited
//! quotas.

use oocp_sim::time::Ns;

/// Identifies one registered tenant (dense, starting at 0 in
/// registration order). Also used as the disk layer's request tag.
pub type TenantId = u32;

/// Service class used by the pressure arbiter to order load shedding.
///
/// Shedding is strictly class-ordered: `BestEffort` tenants lose their
/// prefetch pipelining first (clamped under [`PressureLevel::Elevated`],
/// dropped under [`PressureLevel::Brownout`]), `Burstable` tenants keep
/// hints until brownout, and `Guaranteed` tenants' hints are never shed
/// by pressure (only their own quotas bound them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum QosClass {
    /// Lowest class: first to lose prefetching under pressure.
    BestEffort,
    /// Middle class: hints survive elevation, shed under brownout.
    Burstable,
    /// Highest class: pressure never sheds its hints. The implicit solo
    /// tenant's class, so single-program runs are unaffected.
    #[default]
    Guaranteed,
}

/// Global memory-pressure level, classified from the free-frame pool
/// against the pageout watermarks (see [`crate::Machine::pressure_level`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Pool at or above the high watermark: no shedding.
    #[default]
    Nominal,
    /// Pool between the watermarks: the daemon is working to keep up;
    /// best-effort tenants' pipelining depth is clamped.
    Elevated,
    /// Pool below the low watermark: replenishment is losing. All
    /// non-guaranteed hints are dropped and the runtime layer pushes
    /// low-QoS tenants into demand-only degraded mode.
    Brownout,
}

/// Under [`PressureLevel::Elevated`], a best-effort tenant may keep at
/// most this many prefetch pages in flight; hints past the clamp are
/// dropped with reason `pressure`.
pub const ELEVATED_BEST_EFFORT_SLOTS: u64 = 4;

/// Per-tenant resource policy, fixed at registration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantSpec {
    /// Service class for pressure shedding.
    pub qos: QosClass,
    /// Maximum frames the tenant may hold (active resident + in-flight);
    /// `None` is unlimited. A demand fault over quota evicts one of the
    /// tenant's *own* pages first, so a quota-starved tenant still makes
    /// progress on its own recycled frames. Treated as at least 1.
    pub memory_frames: Option<u64>,
    /// Maximum prefetch pages the tenant may keep in flight; `None` is
    /// unlimited. Hints past the quota are dropped with reason `quota`.
    pub prefetch_slots: Option<u64>,
    /// Software-pipelining depth cap the runtime hub applies to this
    /// tenant's prefetch distance (in pages); `None` leaves the
    /// compiler's distance alone. Clamped further under pressure.
    pub max_pipeline_depth: Option<u64>,
}

impl TenantSpec {
    /// A guaranteed tenant with unlimited quotas — the implicit solo
    /// tenant's policy.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder: set the QoS class.
    #[must_use]
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Builder: cap resident + in-flight frames.
    #[must_use]
    pub fn with_memory_frames(mut self, frames: u64) -> Self {
        self.memory_frames = Some(frames);
        self
    }

    /// Builder: cap in-flight prefetch pages.
    #[must_use]
    pub fn with_prefetch_slots(mut self, slots: u64) -> Self {
        self.prefetch_slots = Some(slots);
        self
    }
}

/// Per-tenant counters maintained by the machine (the shared [`crate::OsStats`]
/// aggregates them across tenants; these attribute the same events to
/// their owner).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Demand faults (hard) charged to this tenant.
    pub demand_faults: u64,
    /// Total demand-stall time attributed to this tenant.
    pub fault_wait_ns: Ns,
    /// Prefetch pages this tenant put in flight.
    pub prefetch_pages_issued: u64,
    /// Hint pages dropped because the tenant's prefetch-slot or memory
    /// quota was exhausted.
    pub hints_dropped_quota: u64,
    /// Hint pages shed by the pressure arbiter (elevation clamp or
    /// brownout).
    pub hints_dropped_pressure: u64,
    /// Own-page evictions forced by the memory quota on a demand fault.
    pub quota_evictions: u64,
    /// Live gauge: prefetch pages currently in flight.
    pub inflight_prefetch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_orders_by_shedding_priority() {
        assert!(QosClass::BestEffort < QosClass::Burstable);
        assert!(QosClass::Burstable < QosClass::Guaranteed);
        assert_eq!(QosClass::default(), QosClass::Guaranteed);
    }

    #[test]
    fn pressure_orders_by_severity() {
        assert!(PressureLevel::Nominal < PressureLevel::Elevated);
        assert!(PressureLevel::Elevated < PressureLevel::Brownout);
    }

    #[test]
    fn spec_builders_compose() {
        let s = TenantSpec::unlimited()
            .with_qos(QosClass::BestEffort)
            .with_memory_frames(16)
            .with_prefetch_slots(8);
        assert_eq!(s.qos, QosClass::BestEffort);
        assert_eq!(s.memory_frames, Some(16));
        assert_eq!(s.prefetch_slots, Some(8));
        assert_eq!(s.max_pipeline_depth, None);
    }
}
