//! The virtual-machine interface the interpreter executes against.

/// Cost model for user-mode computation, in nanoseconds per operation.
///
/// These stand in for `gcc -O2` code on the paper's 16.7 MHz processor
/// (~60 ns/cycle). Only the *ratios* between computation cost and the
/// OS/disk costs matter for the shape of the results; the defaults are
/// calibrated so the original (non-prefetching) out-of-core runs sit in
/// the paper's 40-70% I/O-stall regime. See `EXPERIMENTS.md`.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of one memory reference (address generation + access).
    pub ns_per_access: u64,
    /// Cost of one floating-point operation.
    pub ns_per_flop: u64,
    /// Cost of one integer ALU operation.
    pub ns_per_iop: u64,
    /// Loop bookkeeping per iteration (increment, compare, branch).
    pub ns_per_iter: u64,
    /// Instruction overhead of issuing one hint call from user code
    /// (argument setup; the kernel-side cost is charged by the OS).
    pub ns_per_hint_issue: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            ns_per_access: 400,
            ns_per_flop: 500,
            ns_per_iop: 150,
            ns_per_iter: 250,
            ns_per_hint_issue: 500,
        }
    }
}

impl CostModel {
    /// A 2020s out-of-order gigahertz core: fractions of a nanosecond
    /// per operation. Used with the modern machine presets.
    pub fn modern() -> Self {
        Self {
            ns_per_access: 2,
            ns_per_flop: 1,
            ns_per_iop: 1,
            ns_per_iter: 1,
            ns_per_hint_issue: 2,
        }
    }

    /// A zero-cost model (pure semantics, used by equivalence tests).
    pub fn free() -> Self {
        Self {
            ns_per_access: 0,
            ns_per_flop: 0,
            ns_per_iop: 0,
            ns_per_iter: 0,
            ns_per_hint_issue: 0,
        }
    }
}

/// The paged virtual memory a program executes against.
///
/// Implemented by the run-time layer (filtered hints over the simulated
/// OS) and by [`MemVm`] (a flat in-memory store used for semantics-only
/// runs). Addresses are byte addresses in a flat virtual address space;
/// all loads and stores are 8 bytes.
pub trait PagedVm {
    /// Page size in bytes.
    fn page_bytes(&self) -> u64;
    /// Charge `ns` of user-mode computation.
    fn tick_user(&mut self, ns: u64);
    /// Timed 8-byte floating-point load.
    fn load_f64(&mut self, addr: u64) -> f64;
    /// Timed 8-byte floating-point store.
    fn store_f64(&mut self, addr: u64, v: f64);
    /// Timed 8-byte integer load.
    fn load_i64(&mut self, addr: u64) -> i64;
    /// Timed 8-byte integer store.
    fn store_i64(&mut self, addr: u64, v: i64);
    /// Non-binding prefetch hint for `pages` pages starting at the page
    /// containing `addr`.
    fn prefetch(&mut self, addr: u64, pages: u64);
    /// Non-binding release hint.
    fn release(&mut self, addr: u64, pages: u64);
    /// Bundled prefetch + release hint (one call).
    fn prefetch_release(&mut self, pf_addr: u64, pf_pages: u64, rel_addr: u64, rel_pages: u64);
}

/// Untimed raw access to array bytes, for initialization and result
/// verification outside the measured region.
pub trait ArrayData {
    /// Read an `f64` without touching residency or time.
    fn peek_f64(&self, addr: u64) -> f64;
    /// Write an `f64` without touching residency or time.
    fn poke_f64(&mut self, addr: u64, v: f64);
    /// Read an `i64` without touching residency or time.
    fn peek_i64(&self, addr: u64) -> i64;
    /// Write an `i64` without touching residency or time.
    fn poke_i64(&mut self, addr: u64, v: i64);
}

/// A trivial flat-memory VM: no paging, no time, but full counting of
/// accesses and hints.
///
/// Used to establish reference results for semantic-equivalence tests
/// (original program on `MemVm` vs. transformed program on the machine)
/// and to unit-test the interpreter itself.
#[derive(Clone, Debug)]
pub struct MemVm {
    data: Vec<u8>,
    page_bytes: u64,
    /// Number of timed loads+stores performed.
    pub accesses: u64,
    /// Number of prefetch hints received (including bundled).
    pub prefetches: u64,
    /// Number of release hints received (including bundled).
    pub releases: u64,
    /// Total user nanoseconds charged.
    pub user_ns: u64,
}

impl MemVm {
    /// Create a flat memory of `bytes` bytes (zero-filled).
    pub fn new(bytes: u64, page_bytes: u64) -> Self {
        Self {
            data: vec![0; bytes as usize],
            page_bytes,
            accesses: 0,
            prefetches: 0,
            releases: 0,
            user_ns: 0,
        }
    }

    /// Raw bytes (verification).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

impl PagedVm for MemVm {
    fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    fn tick_user(&mut self, ns: u64) {
        self.user_ns += ns;
    }

    fn load_f64(&mut self, addr: u64) -> f64 {
        self.accesses += 1;
        self.peek_f64(addr)
    }

    fn store_f64(&mut self, addr: u64, v: f64) {
        self.accesses += 1;
        self.poke_f64(addr, v);
    }

    fn load_i64(&mut self, addr: u64) -> i64 {
        self.accesses += 1;
        self.peek_i64(addr)
    }

    fn store_i64(&mut self, addr: u64, v: i64) {
        self.accesses += 1;
        self.poke_i64(addr, v);
    }

    fn prefetch(&mut self, _addr: u64, _pages: u64) {
        self.prefetches += 1;
    }

    fn release(&mut self, _addr: u64, _pages: u64) {
        self.releases += 1;
    }

    fn prefetch_release(&mut self, _pf: u64, _pfn: u64, _rel: u64, _reln: u64) {
        self.prefetches += 1;
        self.releases += 1;
    }
}

impl ArrayData for MemVm {
    fn peek_f64(&self, addr: u64) -> f64 {
        f64::from_le_bytes(
            self.data[addr as usize..addr as usize + 8]
                .try_into()
                .unwrap(),
        )
    }

    fn poke_f64(&mut self, addr: u64, v: f64) {
        self.data[addr as usize..addr as usize + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn peek_i64(&self, addr: u64) -> i64 {
        i64::from_le_bytes(
            self.data[addr as usize..addr as usize + 8]
                .try_into()
                .unwrap(),
        )
    }

    fn poke_i64(&mut self, addr: u64, v: i64) {
        self.data[addr as usize..addr as usize + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memvm_roundtrips_values() {
        let mut m = MemVm::new(64, 4096);
        m.store_f64(0, 1.5);
        m.store_i64(8, -42);
        assert_eq!(m.load_f64(0), 1.5);
        assert_eq!(m.load_i64(8), -42);
        assert_eq!(m.accesses, 4);
    }

    #[test]
    fn memvm_counts_hints() {
        let mut m = MemVm::new(64, 4096);
        m.prefetch(0, 4);
        m.release(0, 1);
        m.prefetch_release(0, 1, 8, 1);
        assert_eq!(m.prefetches, 2);
        assert_eq!(m.releases, 2);
    }

    #[test]
    fn default_cost_model_is_nonzero_and_free_is_zero() {
        let d = CostModel::default();
        assert!(d.ns_per_access > 0 && d.ns_per_flop > 0);
        let f = CostModel::free();
        assert_eq!(f.ns_per_access + f.ns_per_flop + f.ns_per_iter, 0);
    }
}
