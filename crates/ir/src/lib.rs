//! Loop-nest intermediate representation and interpreter.
//!
//! The paper's compiler pass operates on Fortran loop nests inside SUIF;
//! this crate provides the analogous substrate: a structured IR of
//! (possibly symbolically-bounded) counted loops over multi-dimensional
//! arrays, with affine subscripts plus one level of indirection
//! (`a[b[i]]`), scalar temporaries, conditionals, and real floating-point
//! and integer arithmetic. Programs in this IR are *executed*, not just
//! analyzed: the interpreter walks the loop nest, performs every load,
//! store, and arithmetic operation against a [`vm::PagedVm`], and charges
//! user time according to an explicit cost model. This is what lets the
//! test suite prove that the prefetching compiler's output is
//! semantically identical to its input — the non-binding-prefetch
//! correctness property of the paper's Figure 1.
//!
//! The IR also carries the three hint statements the compiler inserts:
//! `prefetch`, `release`, and the bundled `prefetch_release` (each in
//! single-page and block forms via a page count), mirroring Figure 2(b).

pub mod exec;
pub mod expr;
pub mod parse;
pub mod program;
pub mod vm;

pub use exec::{run_program, run_program_profiled, ArrayBinding, ExecStats, Executor};
pub use expr::{lin, param, var, BinOp, CmpOp, Cond, Expr, LinExpr, Sym, UnOp};
pub use parse::{parse_program, ParseError};
pub use program::{ArrayDecl, ArrayRef, ElemType, HintTarget, Index, Loop, Program, Stmt};
pub use vm::{ArrayData, CostModel, MemVm, PagedVm};
