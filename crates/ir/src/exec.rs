//! The interpreter: executes a program against a [`PagedVm`].

use crate::expr::{BinOp, CmpOp, Cond, Expr, LinExpr, Sym, UnOp};
use crate::program::{ArrayRef, ElemType, Index, Loop, Program, Stmt};
use crate::vm::{CostModel, PagedVm};
use oocp_obs::prof::{HostProf, NoProf, ProfSink};

/// Placement of one array in the virtual address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayBinding {
    /// Byte address of element 0.
    pub base: u64,
}

impl ArrayBinding {
    /// Lay out a program's arrays sequentially, each page-aligned,
    /// returning the bindings and the total address-space size in bytes.
    ///
    /// The simulated machine and [`crate::vm::MemVm`] both use this
    /// layout, so results can be compared byte-for-byte.
    pub fn sequential(prog: &Program, page_bytes: u64) -> (Vec<ArrayBinding>, u64) {
        let mut base = 0u64;
        let mut binds = Vec::with_capacity(prog.arrays.len());
        for a in &prog.arrays {
            binds.push(ArrayBinding { base });
            let pages = a.bytes().div_ceil(page_bytes).max(1);
            base += pages * page_bytes;
        }
        (binds, base.max(page_bytes))
    }
}

/// Dynamic counts of the executed program (calibration and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Timed array loads.
    pub loads: u64,
    /// Timed array stores.
    pub stores: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Integer ALU operations (including address arithmetic).
    pub iops: u64,
    /// Loop iterations executed.
    pub iters: u64,
    /// Prefetch statements executed (including bundled).
    pub prefetch_stmts: u64,
    /// Release statements executed (including bundled).
    pub release_stmts: u64,
    /// Total pages named by prefetch hints.
    pub prefetch_pages: u64,
}

/// Runtime value.
#[derive(Clone, Copy, Debug)]
enum V {
    F(f64),
    I(i64),
}

impl V {
    fn as_f(self) -> f64 {
        match self {
            V::F(v) => v,
            V::I(v) => v as f64,
        }
    }

    fn as_i(self) -> i64 {
        match self {
            V::F(v) => v as i64,
            V::I(v) => v,
        }
    }
}

/// Interpreter state for one run.
///
/// Generic over a host-time [`ProfSink`]: the default [`NoProf`] sink
/// has `ACTIVE = false` and empty inline methods, so every probe site
/// below monomorphizes to nothing and a detached run compiles to the
/// same code as before the profiler existed. Attach a live collector
/// with [`Executor::with_prof`] (or [`run_program_profiled`]); probes
/// only read the host clock, never the simulated one, so attachment
/// cannot change any simulated timestamp or computed result.
pub struct Executor<'a, M: PagedVm, P: ProfSink = NoProf> {
    prog: &'a Program,
    binds: &'a [ArrayBinding],
    params: &'a [i64],
    cost: CostModel,
    vm: &'a mut M,
    vars: Vec<i64>,
    fscalars: Vec<f64>,
    iscalars: Vec<i64>,
    pending_ns: u64,
    stats: ExecStats,
    prof: P,
    /// `for#<var>` site labels, formatted once here so the per-entry
    /// probe in [`Executor::exec_loop`] never allocates. Empty when the
    /// sink is inactive.
    loop_labels: Vec<String>,
}

impl<'a, M: PagedVm> Executor<'a, M, NoProf> {
    /// Prepare an execution of `prog`.
    ///
    /// # Panics
    ///
    /// Panics if the binding or parameter counts do not match the
    /// program, or if the program fails validation.
    pub fn new(
        prog: &'a Program,
        binds: &'a [ArrayBinding],
        params: &'a [i64],
        cost: CostModel,
        vm: &'a mut M,
    ) -> Self {
        Self::with_prof(prog, binds, params, cost, vm, NoProf)
    }
}

impl<'a, M: PagedVm, P: ProfSink> Executor<'a, M, P> {
    /// Like [`Executor::new`], but host time is attributed into `prof`.
    ///
    /// # Panics
    ///
    /// Panics if the binding or parameter counts do not match the
    /// program, or if the program fails validation.
    pub fn with_prof(
        prog: &'a Program,
        binds: &'a [ArrayBinding],
        params: &'a [i64],
        cost: CostModel,
        vm: &'a mut M,
        prof: P,
    ) -> Self {
        assert_eq!(
            binds.len(),
            prog.arrays.len(),
            "one binding per array required"
        );
        assert_eq!(
            params.len(),
            prog.params.len(),
            "one value per program parameter required"
        );
        let problems = prog.validate();
        assert!(
            problems.is_empty(),
            "invalid program {}: {}",
            prog.name,
            problems.join("; ")
        );
        let loop_labels = if P::ACTIVE {
            (0..prog.num_vars).map(|v| format!("for#{v}")).collect()
        } else {
            Vec::new()
        };
        Self {
            prog,
            binds,
            params,
            cost,
            vm,
            vars: vec![0; prog.num_vars],
            fscalars: vec![0.0; prog.num_fscalars],
            iscalars: vec![0; prog.num_iscalars],
            pending_ns: 0,
            stats: ExecStats::default(),
            prof,
            loop_labels,
        }
    }

    /// Execute the program to completion, returning dynamic counts.
    pub fn run(mut self) -> ExecStats {
        if P::ACTIVE {
            let prog = self.prog;
            self.prof.enter(&prog.name);
        }
        let body = &self.prog.body;
        self.exec_block(body);
        self.flush();
        if P::ACTIVE {
            self.prof.exit();
        }
        self.stats
    }

    fn flush(&mut self) {
        if self.pending_ns > 0 {
            self.vm.tick_user(self.pending_ns);
            self.pending_ns = 0;
        }
    }

    fn charge_iops(&mut self, n: u64) {
        self.stats.iops += n;
        self.pending_ns += self.cost.ns_per_iop * n;
    }

    fn charge_flop(&mut self) {
        self.stats.flops += 1;
        self.pending_ns += self.cost.ns_per_flop;
    }

    fn eval_lin(&mut self, e: &LinExpr) -> i64 {
        self.charge_iops(e.terms.len() as u64);
        e.c + e
            .terms
            .iter()
            .map(|&(k, s)| {
                k * match s {
                    Sym::Var(v) => self.vars[v],
                    Sym::Param(p) => self.params[p],
                }
            })
            .sum::<i64>()
    }

    /// Compute the byte address of a reference.
    ///
    /// With `clamp`, every subscript (including indirect inner ones) is
    /// clamped into its dimension — used for hint targets, whose
    /// addresses may legally run past the iteration space. Without it,
    /// out-of-bounds subscripts panic (a kernel bug).
    fn ref_addr(&mut self, r: &ArrayRef, clamp: bool) -> u64 {
        if P::ACTIVE {
            self.prof.enter("op:addr");
        }
        let addr = self.ref_addr_inner(r, clamp);
        if P::ACTIVE {
            self.prof.exit();
        }
        addr
    }

    fn ref_addr_inner(&mut self, r: &ArrayRef, clamp: bool) -> u64 {
        let decl = &self.prog.arrays[r.array];
        let rank = decl.dims.len();
        let mut flat: i64 = 0;
        for (d, ix) in r.idx.iter().enumerate() {
            let mut sub = match ix {
                Index::Lin(e) => self.eval_lin(e),
                Index::Ind { array, idx } => {
                    // One timed load of the index array element.
                    let inner = ArrayRef::affine(*array, idx.clone());
                    let addr = self.ref_addr(&inner, clamp);
                    self.flush();
                    self.stats.loads += 1;
                    self.pending_ns += self.cost.ns_per_access;
                    self.vm.load_i64(addr)
                }
            };
            let dim = decl.dims[d];
            if clamp {
                sub = sub.clamp(0, dim - 1);
            } else {
                assert!(
                    (0..dim).contains(&sub),
                    "subscript {sub} out of range [0,{dim}) in dim {d} of array {} ({})",
                    decl.name,
                    self.prog.name
                );
            }
            flat += sub * decl.stride(d);
            self.charge_iops(if d + 1 < rank { 2 } else { 1 });
        }
        self.binds[r.array].base + flat as u64 * decl.elem.bytes()
    }

    fn load_ref(&mut self, r: &ArrayRef) -> V {
        if P::ACTIVE {
            self.prof.enter("op:load");
        }
        let elem = self.prog.arrays[r.array].elem;
        let addr = self.ref_addr(r, false);
        self.pending_ns += self.cost.ns_per_access;
        self.flush();
        self.stats.loads += 1;
        let v = match elem {
            ElemType::F64 => V::F(self.vm.load_f64(addr)),
            ElemType::I64 => V::I(self.vm.load_i64(addr)),
        };
        if P::ACTIVE {
            self.prof.exit();
        }
        v
    }

    fn eval(&mut self, e: &Expr) -> V {
        match e {
            Expr::LoadF(r) | Expr::LoadI(r) => self.load_ref(r),
            Expr::ScalarF(i) => V::F(self.fscalars[*i]),
            Expr::ScalarI(i) => V::I(self.iscalars[*i]),
            Expr::Lin(l) => V::I(self.eval_lin(l)),
            Expr::ConstF(v) => V::F(*v),
            Expr::Bin(op, a, b) => {
                let va = self.eval(a);
                let vb = self.eval(b);
                match (va, vb) {
                    (V::I(x), V::I(y)) => {
                        self.charge_iops(1);
                        V::I(match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Div => {
                                assert!(y != 0, "integer division by zero");
                                x / y
                            }
                            BinOp::Rem => {
                                assert!(y != 0, "integer remainder by zero");
                                x % y
                            }
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                        })
                    }
                    _ => {
                        let (x, y) = (va.as_f(), vb.as_f());
                        self.charge_flop();
                        V::F(match op {
                            BinOp::Add => x + y,
                            BinOp::Sub => x - y,
                            BinOp::Mul => x * y,
                            BinOp::Div => x / y,
                            BinOp::Rem => x % y,
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                        })
                    }
                }
            }
            Expr::Un(op, a) => {
                let v = self.eval(a);
                match (op, v) {
                    (UnOp::Neg, V::I(x)) => {
                        self.charge_iops(1);
                        V::I(-x)
                    }
                    (UnOp::Abs, V::I(x)) => {
                        self.charge_iops(1);
                        V::I(x.abs())
                    }
                    (op, v) => {
                        self.charge_flop();
                        let x = v.as_f();
                        V::F(match op {
                            UnOp::Neg => -x,
                            UnOp::Sqrt => x.sqrt(),
                            UnOp::Ln => x.ln(),
                            UnOp::Abs => x.abs(),
                        })
                    }
                }
            }
            Expr::ToF(a) => {
                let v = self.eval(a);
                self.charge_flop();
                V::F(v.as_f())
            }
            Expr::ToI(a) => {
                let v = self.eval(a);
                self.charge_iops(1);
                V::I(v.as_i())
            }
        }
    }

    fn eval_cond(&mut self, c: &Cond) -> bool {
        let l = self.eval(&c.lhs);
        let r = self.eval(&c.rhs);
        self.charge_iops(1);
        match (l, r) {
            (V::I(a), V::I(b)) => match c.op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            },
            (a, b) => {
                let (a, b) = (a.as_f(), b.as_f());
                match c.op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                }
            }
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.exec(s);
        }
    }

    fn exec(&mut self, s: &Stmt) {
        if P::ACTIVE {
            // Loops get their own `for#<var>` site in `exec_loop`; every
            // other statement class is a site whose *self* time is the
            // expression-evaluation / dispatch work not claimed by an
            // `op:*` leaf below it.
            let label = match s {
                Stmt::For(_) => None,
                Stmt::Store { .. } => Some("stmt:store"),
                Stmt::LetF { .. } | Stmt::LetI { .. } => Some("stmt:let"),
                Stmt::If { .. } => Some("stmt:if"),
                Stmt::Prefetch { .. } => Some("stmt:prefetch"),
                Stmt::Release { .. } => Some("stmt:release"),
                Stmt::PrefetchRelease { .. } => Some("stmt:prefetch_release"),
            };
            if let Some(label) = label {
                self.prof.enter(label);
                self.exec_inner(s);
                self.prof.exit();
                return;
            }
        }
        self.exec_inner(s);
    }

    fn exec_inner(&mut self, s: &Stmt) {
        match s {
            Stmt::For(l) => self.exec_loop(l),
            Stmt::Store { dst, value } => {
                let v = self.eval(value);
                if P::ACTIVE {
                    self.prof.enter("op:store");
                }
                let elem = self.prog.arrays[dst.array].elem;
                let addr = self.ref_addr(dst, false);
                self.pending_ns += self.cost.ns_per_access;
                self.flush();
                self.stats.stores += 1;
                match elem {
                    ElemType::F64 => self.vm.store_f64(addr, v.as_f()),
                    ElemType::I64 => self.vm.store_i64(addr, v.as_i()),
                }
                if P::ACTIVE {
                    self.prof.exit();
                }
            }
            Stmt::LetF { dst, value } => {
                let v = self.eval(value);
                self.fscalars[*dst] = v.as_f();
            }
            Stmt::LetI { dst, value } => {
                let v = self.eval(value);
                self.iscalars[*dst] = v.as_i();
            }
            Stmt::If { cond, then_, else_ } => {
                if self.eval_cond(cond) {
                    self.exec_block(then_);
                } else {
                    self.exec_block(else_);
                }
            }
            Stmt::Prefetch { target, pages } => {
                let addr = self.ref_addr(&target.target, true);
                if P::ACTIVE {
                    self.prof.enter("op:hint");
                }
                self.pending_ns += self.cost.ns_per_hint_issue;
                self.flush();
                self.stats.prefetch_stmts += 1;
                self.stats.prefetch_pages += pages;
                self.vm.prefetch(addr, *pages);
                if P::ACTIVE {
                    self.prof.exit();
                }
            }
            Stmt::Release { target, pages } => {
                let addr = self.ref_addr(&target.target, true);
                if P::ACTIVE {
                    self.prof.enter("op:hint");
                }
                self.pending_ns += self.cost.ns_per_hint_issue;
                self.flush();
                self.stats.release_stmts += 1;
                self.vm.release(addr, *pages);
                if P::ACTIVE {
                    self.prof.exit();
                }
            }
            Stmt::PrefetchRelease {
                pf,
                pf_pages,
                rel,
                rel_pages,
            } => {
                let pf_addr = self.ref_addr(&pf.target, true);
                let rel_addr = self.ref_addr(&rel.target, true);
                if P::ACTIVE {
                    self.prof.enter("op:hint");
                }
                self.pending_ns += self.cost.ns_per_hint_issue;
                self.flush();
                self.stats.prefetch_stmts += 1;
                self.stats.release_stmts += 1;
                self.stats.prefetch_pages += pf_pages;
                self.vm
                    .prefetch_release(pf_addr, *pf_pages, rel_addr, *rel_pages);
                if P::ACTIVE {
                    self.prof.exit();
                }
            }
        }
    }

    fn exec_loop(&mut self, l: &Loop) {
        // One site per loop *entry*, not per iteration: a probe pair
        // inside the iteration latch would dominate what it measures.
        if P::ACTIVE {
            self.prof.enter(&self.loop_labels[l.var]);
        }
        // Bounds are computed once at loop entry, Fortran-style.
        let lo = self.eval_lin(&l.lo);
        let mut hi = self.eval_lin(&l.hi);
        if let Some(m) = &l.hi_min {
            let m = self.eval_lin(m);
            hi = if l.step > 0 { hi.min(m) } else { hi.max(m) };
        }
        let mut i = lo;
        loop {
            let more = if l.step > 0 { i < hi } else { i > hi };
            if !more {
                break;
            }
            self.vars[l.var] = i;
            self.stats.iters += 1;
            self.pending_ns += self.cost.ns_per_iter;
            self.exec_block(&l.body);
            i += l.step;
        }
        if P::ACTIVE {
            self.prof.exit();
        }
    }
}

/// Convenience wrapper: build an executor and run it.
pub fn run_program<M: PagedVm>(
    prog: &Program,
    binds: &[ArrayBinding],
    params: &[i64],
    cost: CostModel,
    vm: &mut M,
) -> ExecStats {
    Executor::new(prog, binds, params, cost, vm).run()
}

/// Like [`run_program`], but with host-time attribution into `prof`:
/// the run lands as a `<prog.name>` subtree of sites (loop nests,
/// statement classes, opcode classes) under the collector's root.
pub fn run_program_profiled<M: PagedVm>(
    prog: &Program,
    binds: &[ArrayBinding],
    params: &[i64],
    cost: CostModel,
    vm: &mut M,
    prof: &mut HostProf,
) -> ExecStats {
    Executor::with_prof(prog, binds, params, cost, vm, prof).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{lin, var};
    use crate::program::HintTarget;
    use crate::vm::{ArrayData, MemVm};

    /// y[i] = 2*x[i] + y[i] over n elements.
    fn axpy(n: i64) -> Program {
        let mut p = Program::new("axpy");
        let x = p.array("x", ElemType::F64, vec![n]);
        let y = p.array("y", ElemType::F64, vec![n]);
        let i = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(n),
            1,
            vec![Stmt::Store {
                dst: ArrayRef::affine(y, vec![var(i)]),
                value: Expr::add(
                    Expr::mul(
                        Expr::ConstF(2.0),
                        Expr::LoadF(ArrayRef::affine(x, vec![var(i)])),
                    ),
                    Expr::LoadF(ArrayRef::affine(y, vec![var(i)])),
                ),
            }],
        )];
        p
    }

    fn setup(prog: &Program) -> (Vec<ArrayBinding>, MemVm) {
        let (binds, bytes) = ArrayBinding::sequential(prog, 4096);
        (binds, MemVm::new(bytes, 4096))
    }

    #[test]
    fn axpy_computes_correctly() {
        let p = axpy(100);
        let (binds, mut vm) = setup(&p);
        for i in 0..100u64 {
            vm.poke_f64(binds[0].base + i * 8, i as f64);
            vm.poke_f64(binds[1].base + i * 8, 1.0);
        }
        let stats = run_program(&p, &binds, &[], CostModel::default(), &mut vm);
        for i in 0..100u64 {
            assert_eq!(vm.peek_f64(binds[1].base + i * 8), 2.0 * i as f64 + 1.0);
        }
        assert_eq!(stats.iters, 100);
        assert_eq!(stats.loads, 200);
        assert_eq!(stats.stores, 100);
        assert!(vm.user_ns > 0);
    }

    #[test]
    fn sequential_layout_is_page_aligned_and_disjoint() {
        let p = axpy(1000); // 8000 bytes each: 2 pages
        let (binds, total) = ArrayBinding::sequential(&p, 4096);
        assert_eq!(binds[0].base, 0);
        assert_eq!(binds[1].base, 8192);
        assert_eq!(total, 16384);
    }

    #[test]
    fn indirect_reference_reads_index_array() {
        // a[b[i]] += 1 (histogram).
        let mut p = Program::new("hist");
        let a = p.array("a", ElemType::I64, vec![10]);
        let b = p.array("b", ElemType::I64, vec![5]);
        let i = p.fresh_var();
        let aref = ArrayRef {
            array: a,
            idx: vec![Index::Ind {
                array: b,
                idx: vec![var(i)],
            }],
        };
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(5),
            1,
            vec![Stmt::Store {
                dst: aref.clone(),
                value: Expr::add(Expr::LoadI(aref), Expr::Lin(lin(1))),
            }],
        )];
        let (binds, mut vm) = setup(&p);
        let keys = [3i64, 7, 3, 0, 7];
        for (i, &k) in keys.iter().enumerate() {
            vm.poke_i64(binds[b].base + i as u64 * 8, k);
        }
        run_program(&p, &binds, &[], CostModel::free(), &mut vm);
        let counts: Vec<i64> = (0..10)
            .map(|i| vm.peek_i64(binds[a].base + i * 8))
            .collect();
        assert_eq!(counts, vec![1, 0, 0, 2, 0, 0, 0, 2, 0, 0]);
    }

    #[test]
    fn symbolic_bounds_come_from_params() {
        let mut p = Program::new("sym");
        let x = p.array("x", ElemType::F64, vec![100]);
        let n = p.param("n");
        let i = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            crate::expr::param(n),
            1,
            vec![Stmt::Store {
                dst: ArrayRef::affine(x, vec![var(i)]),
                value: Expr::ConstF(1.0),
            }],
        )];
        let (binds, mut vm) = setup(&p);
        let stats = run_program(&p, &binds, &[7], CostModel::free(), &mut vm);
        assert_eq!(stats.iters, 7);
        assert_eq!(vm.peek_f64(binds[x].base + 6 * 8), 1.0);
        assert_eq!(vm.peek_f64(binds[x].base + 7 * 8), 0.0);
    }

    #[test]
    fn negative_step_runs_backwards() {
        let mut p = Program::new("back");
        let x = p.array("x", ElemType::I64, vec![10]);
        let i = p.fresh_var();
        // for (i = 9; i > -1; i--) x[i] = i
        p.body = vec![Stmt::for_(
            i,
            lin(9),
            lin(-1),
            -1,
            vec![Stmt::Store {
                dst: ArrayRef::affine(x, vec![var(i)]),
                value: Expr::Lin(var(i)),
            }],
        )];
        let (binds, mut vm) = setup(&p);
        let stats = run_program(&p, &binds, &[], CostModel::free(), &mut vm);
        assert_eq!(stats.iters, 10);
        assert_eq!(vm.peek_i64(binds[x].base + 9 * 8), 9);
        assert_eq!(vm.peek_i64(binds[x].base), 0);
    }

    #[test]
    fn hint_targets_are_clamped_not_fatal() {
        let mut p = Program::new("clamp");
        let x = p.array("x", ElemType::F64, vec![10]);
        let i = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(10),
            1,
            vec![Stmt::Prefetch {
                target: HintTarget {
                    // x[i + 100] runs far past the array; must clamp.
                    target: ArrayRef::affine(x, vec![var(i).offset(100)]),
                },
                pages: 1,
            }],
        )];
        let (binds, mut vm) = setup(&p);
        let stats = run_program(&p, &binds, &[], CostModel::free(), &mut vm);
        assert_eq!(stats.prefetch_stmts, 10);
        assert_eq!(vm.prefetches, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn demand_out_of_bounds_panics() {
        let mut p = Program::new("oob");
        let x = p.array("x", ElemType::F64, vec![10]);
        let i = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(11),
            1,
            vec![Stmt::Store {
                dst: ArrayRef::affine(x, vec![var(i)]),
                value: Expr::ConstF(0.0),
            }],
        )];
        let (binds, mut vm) = setup(&p);
        run_program(&p, &binds, &[], CostModel::free(), &mut vm);
    }

    #[test]
    fn scalars_and_conditionals_work() {
        // s = 0; for i { if x[i] > 0.5 { s = s + x[i] } }
        let mut p = Program::new("condsum");
        let x = p.array("x", ElemType::F64, vec![4]);
        let s = p.fresh_fscalar();
        let i = p.fresh_var();
        let sum = p.array("sum", ElemType::F64, vec![1]);
        p.body = vec![
            Stmt::LetF {
                dst: s,
                value: Expr::ConstF(0.0),
            },
            Stmt::for_(
                i,
                lin(0),
                lin(4),
                1,
                vec![Stmt::If {
                    cond: Cond {
                        lhs: Expr::LoadF(ArrayRef::affine(x, vec![var(i)])),
                        op: CmpOp::Gt,
                        rhs: Expr::ConstF(0.5),
                    },
                    then_: vec![Stmt::LetF {
                        dst: s,
                        value: Expr::add(
                            Expr::ScalarF(s),
                            Expr::LoadF(ArrayRef::affine(x, vec![var(i)])),
                        ),
                    }],
                    else_: vec![],
                }],
            ),
            Stmt::Store {
                dst: ArrayRef::affine(sum, vec![lin(0)]),
                value: Expr::ScalarF(s),
            },
        ];
        let (binds, mut vm) = setup(&p);
        for (i, v) in [0.25, 0.75, 1.0, 0.1].iter().enumerate() {
            vm.poke_f64(binds[x].base + i as u64 * 8, *v);
        }
        run_program(&p, &binds, &[], CostModel::free(), &mut vm);
        assert_eq!(vm.peek_f64(binds[sum].base), 1.75);
    }

    #[test]
    fn multidim_row_major_addressing() {
        let mut p = Program::new("mat");
        let c = p.array("c", ElemType::F64, vec![3, 4]);
        let i = p.fresh_var();
        let j = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(3),
            1,
            vec![Stmt::for_(
                j,
                lin(0),
                lin(4),
                1,
                vec![Stmt::Store {
                    dst: ArrayRef::affine(c, vec![var(i), var(j)]),
                    value: Expr::Lin(var(i).scale(10).add(&var(j))),
                }],
            )],
        )];
        let (binds, mut vm) = setup(&p);
        run_program(&p, &binds, &[], CostModel::free(), &mut vm);
        // c[2][3] = 23 at flat index 2*4+3 = 11.
        assert_eq!(vm.peek_f64(binds[c].base + 11 * 8), 23.0);
        assert_eq!(vm.peek_f64(binds[c].base + 4 * 8), 10.0);
    }

    #[test]
    fn profiled_run_is_sim_identical_and_attributes_sites() {
        let p = axpy(100);
        let (binds, mut vm) = setup(&p);
        let (binds2, mut vm2) = setup(&p);
        for i in 0..100u64 {
            vm.poke_f64(binds[0].base + i * 8, i as f64);
            vm.poke_f64(binds[1].base + i * 8, 1.0);
            vm2.poke_f64(binds2[0].base + i * 8, i as f64);
            vm2.poke_f64(binds2[1].base + i * 8, 1.0);
        }
        let bare = run_program(&p, &binds, &[], CostModel::default(), &mut vm);
        let mut prof = oocp_obs::HostProf::new();
        let profiled =
            run_program_profiled(&p, &binds2, &[], CostModel::default(), &mut vm2, &mut prof);
        // Host-time-only: identical stats, simulated time, and data.
        assert_eq!(bare, profiled);
        assert_eq!(vm.user_ns, vm2.user_ns);
        for i in 0..100u64 {
            assert_eq!(
                vm.peek_f64(binds[1].base + i * 8),
                vm2.peek_f64(binds2[1].base + i * 8)
            );
        }
        // The capture has the expected shape and counts.
        let capture = prof.finish();
        let rows = capture.rows();
        let find = |path: &str| {
            rows.iter()
                .find(|r| r.path == path)
                .unwrap_or_else(|| panic!("no site {path}"))
        };
        assert_eq!(find("all;axpy").count, 1);
        assert_eq!(
            find("all;axpy;for#0").count,
            1,
            "entered once, not per iter"
        );
        assert_eq!(find("all;axpy;for#0;stmt:store").count, 100);
        assert_eq!(find("all;axpy;for#0;stmt:store;op:load").count, 200);
        assert_eq!(find("all;axpy;for#0;stmt:store;op:store").count, 100);
        assert_eq!(
            find("all;axpy;for#0;stmt:store;op:load;op:addr").count,
            200,
            "addresses resolve under their loads"
        );
        oocp_obs::check_collapsed(&capture.collapsed()).expect("collapsed output validates");
    }

    #[test]
    fn profiled_hints_and_indirection_land_in_their_sites() {
        let mut p = Program::new("hinted");
        let x = p.array("x", ElemType::F64, vec![10]);
        let b = p.array("b", ElemType::I64, vec![10]);
        let i = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(10),
            1,
            vec![
                Stmt::Prefetch {
                    target: HintTarget {
                        target: ArrayRef::affine(x, vec![var(i)]),
                    },
                    pages: 1,
                },
                Stmt::Store {
                    dst: ArrayRef {
                        array: x,
                        idx: vec![Index::Ind {
                            array: b,
                            idx: vec![var(i)],
                        }],
                    },
                    value: Expr::ConstF(1.0),
                },
            ],
        )];
        let (binds, mut vm) = setup(&p);
        for j in 0..10u64 {
            vm.poke_i64(binds[b].base + j * 8, j as i64);
        }
        let mut prof = oocp_obs::HostProf::new();
        run_program_profiled(&p, &binds, &[], CostModel::free(), &mut vm, &mut prof);
        let capture = prof.finish();
        let rows = capture.rows();
        let count = |path: &str| rows.iter().find(|r| r.path == path).map_or(0, |r| r.count);
        assert_eq!(count("all;hinted;for#0;stmt:prefetch;op:hint"), 10);
        // The indirect subscript resolves as a nested op:addr.
        assert_eq!(
            count("all;hinted;for#0;stmt:store;op:store;op:addr;op:addr"),
            10
        );
    }

    #[test]
    fn cost_model_charges_user_time() {
        let p = axpy(10);
        let (binds, mut vm) = setup(&p);
        let cost = CostModel {
            ns_per_access: 100,
            ns_per_flop: 10,
            ns_per_iop: 1,
            ns_per_iter: 1000,
            ns_per_hint_issue: 0,
        };
        run_program(&p, &binds, &[], cost, &mut vm);
        // 10 iterations: 10*1000 iter cost + 30 accesses * 100 + flops...
        assert!(vm.user_ns >= 10 * 1000 + 30 * 100);
    }
}
