//! Text frontend: parse kernel source into a [`Program`].
//!
//! The paper's system compiled Fortran through SUIF; this module gives
//! the reproduction an equivalent front door — a small, C-like kernel
//! language that covers everything the IR (and therefore the prefetching
//! pass) supports: multi-dimensional arrays, counted loops (forward and
//! backward, with symbolic bounds), one level of indirection, scalars,
//! conditionals, and real arithmetic.
//!
//! ```text
//! program saxpy {
//!     param n;
//!     double x[1000000];
//!     double y[1000000];
//!     for i = 0 to n {
//!         y[i] = 2.0 * x[i] + y[i];
//!     }
//! }
//! ```
//!
//! Grammar sketch (see the tests for living examples):
//!
//! ```text
//! program  := "program" IDENT "{" item* "}"
//! item     := "param" IDENT ";"
//!           | type IDENT dims? ";"            // dims? absent => scalar
//!           | stmt
//! type     := "double" | "long"
//! dims     := ("[" INT "]")+
//! stmt     := "for" IDENT "=" expr ("to" | "downto") expr ("step" INT)?
//!                 "{" stmt* "}"
//!           | "if" expr cmp expr "{" stmt* "}" ("else" "{" stmt* "}")?
//!           | lvalue "=" expr ";"
//! lvalue   := IDENT subs?                     // array element or scalar
//! subs     := ("[" expr "]")+
//! expr     := arithmetic over +, -, *, /, %, unary -, calls
//!             sqrt/ln/abs/min/max/float/int, numbers, identifiers
//! cmp      := "<" | "<=" | ">" | ">=" | "==" | "!="
//! ```
//!
//! `for v = a to b` iterates `a <= v < b` with step +1 (`step k` for
//! +k); `downto` iterates `a >= v > b` with step -1 (or -k). Array
//! subscripts must be affine in loop variables and parameters, except
//! that a subscript may be a single element of a `long` array with
//! affine subscripts — the `a[b[i]]` indirection of the paper.

use std::fmt;

use crate::expr::{BinOp, CmpOp, Cond, Expr, LinExpr, Sym, UnOp};
use crate::program::{ArrayRef, ElemType, Index, Program, Stmt};

/// A parse error with 1-based line/column position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse kernel source into a program.
///
/// # Examples
///
/// ```
/// use oocp_ir::parse_program;
///
/// let prog = parse_program(
///     "program axpy {
///          param n;
///          double x[1000];
///          double y[1000];
///          for i = 0 to n { y[i] = 2.0 * x[i] + y[i]; }
///      }",
/// )
/// .unwrap();
/// assert_eq!(prog.name, "axpy");
/// assert_eq!(prog.arrays.len(), 2);
/// assert_eq!(prog.params, vec!["n".to_string()]);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let advance = |n: usize, i: &mut usize, col: &mut usize| {
            *i += n;
            *col += n;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => advance(1, &mut i, &mut col),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                col += i - start;
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == '.' && !is_float && {
                            is_float = true;
                            true
                        }))
                {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                col += i - start;
                let tok = if is_float {
                    Tok::Float(s.parse().map_err(|_| ParseError {
                        message: format!("bad float literal {s}"),
                        line: tline,
                        col: tcol,
                    })?)
                } else {
                    Tok::Int(s.parse().map_err(|_| ParseError {
                        message: format!("bad integer literal {s}"),
                        line: tline,
                        col: tcol,
                    })?)
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                // Multi-character punctuation first.
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let punct = match two.as_str() {
                    "<=" | ">=" | "==" | "!=" => Some(match two.as_str() {
                        "<=" => "<=",
                        ">=" => ">=",
                        "==" => "==",
                        _ => "!=",
                    }),
                    _ => None,
                };
                if let Some(p) = punct {
                    advance(2, &mut i, &mut col);
                    out.push(Spanned {
                        tok: Tok::Punct(p),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
                let p = match c {
                    '{' => "{",
                    '}' => "}",
                    '[' => "[",
                    ']' => "]",
                    '(' => "(",
                    ')' => ")",
                    ';' => ";",
                    ',' => ",",
                    '=' => "=",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '<' => "<",
                    '>' => ">",
                    other => {
                        return Err(ParseError {
                            message: format!("unexpected character {other:?}"),
                            line: tline,
                            col: tcol,
                        })
                    }
                };
                advance(1, &mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

/// What a name refers to.
#[derive(Clone, Copy, Debug)]
enum Binding {
    Array(usize),
    FScalar(usize),
    IScalar(usize),
    Param(usize),
    LoopVar(usize),
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    prog: Program,
    scope: Vec<(String, Binding)>,
}

impl Parser {
    fn new(toks: Vec<Spanned>) -> Self {
        Self {
            toks,
            pos: 0,
            prog: Program::new(""),
            scope: Vec::new(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        Err(ParseError {
            message: message.into(),
            line,
            col,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            other => self.err(format!("expected {p:?}, found {other:?}")),
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            other => self.err(format!("expected {kw:?}, found {other:?}")),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, b)| b)
    }

    fn program(mut self) -> Result<Program, ParseError> {
        self.eat_keyword("program")?;
        self.prog.name = self.eat_ident()?;
        self.eat_punct("{")?;
        let body = self.items()?;
        self.eat_punct("}")?;
        if self.pos != self.toks.len() {
            return self.err("trailing tokens after program");
        }
        self.prog.body = body;
        let problems = self.prog.validate();
        if !problems.is_empty() {
            return self.err(format!("invalid program: {}", problems.join("; ")));
        }
        Ok(self.prog)
    }

    fn items(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Punct("}")) | None => break,
                Some(Tok::Ident(kw)) if kw == "param" => {
                    self.pos += 1;
                    let name = self.eat_ident()?;
                    let id = self.prog.param(&name);
                    self.scope.push((name, Binding::Param(id)));
                    self.eat_punct(";")?;
                }
                Some(Tok::Ident(kw)) if kw == "double" || kw == "long" => {
                    let elem = if kw == "double" {
                        ElemType::F64
                    } else {
                        ElemType::I64
                    };
                    self.pos += 1;
                    let name = self.eat_ident()?;
                    let mut dims = Vec::new();
                    while matches!(self.peek(), Some(Tok::Punct("["))) {
                        self.pos += 1;
                        match self.bump() {
                            Some(Tok::Int(n)) if n > 0 => dims.push(n),
                            other => {
                                return self
                                    .err(format!("expected array dimension, found {other:?}"))
                            }
                        }
                        self.eat_punct("]")?;
                    }
                    let binding = if dims.is_empty() {
                        // Scalar declaration.
                        match elem {
                            ElemType::F64 => Binding::FScalar(self.prog.fresh_fscalar()),
                            ElemType::I64 => Binding::IScalar(self.prog.fresh_iscalar()),
                        }
                    } else {
                        Binding::Array(self.prog.array(&name, elem, dims))
                    };
                    self.scope.push((name, binding));
                    self.eat_punct(";")?;
                }
                _ => stmts.push(self.stmt()?),
            }
        }
        Ok(stmts)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Some(Tok::Punct("}"))) {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.keyword_is("for") {
            return self.for_stmt();
        }
        if self.keyword_is("if") {
            return self.if_stmt();
        }
        // Assignment to scalar or array element.
        let name = self.eat_ident()?;
        match self.lookup(&name) {
            Some(Binding::Array(a)) => {
                let idx = self.subscripts(a)?;
                self.eat_punct("=")?;
                let value = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::Store {
                    dst: ArrayRef { array: a, idx },
                    value,
                })
            }
            Some(Binding::FScalar(s)) => {
                self.eat_punct("=")?;
                let value = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::LetF { dst: s, value })
            }
            Some(Binding::IScalar(s)) => {
                self.eat_punct("=")?;
                let value = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::LetI { dst: s, value })
            }
            Some(_) => self.err(format!("cannot assign to {name}")),
            None => self.err(format!("unknown name {name}")),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_keyword("for")?;
        let var_name = self.eat_ident()?;
        self.eat_punct("=")?;
        let lo = self.lin_expr()?;
        let down = if self.keyword_is("to") {
            self.pos += 1;
            false
        } else if self.keyword_is("downto") {
            self.pos += 1;
            true
        } else {
            return self.err("expected `to` or `downto`");
        };
        let hi = self.lin_expr()?;
        let step_mag = if self.keyword_is("step") {
            self.pos += 1;
            match self.bump() {
                Some(Tok::Int(n)) if n > 0 => n,
                other => return self.err(format!("expected positive step, found {other:?}")),
            }
        } else {
            1
        };
        let v = self.prog.fresh_var();
        self.scope.push((var_name.clone(), Binding::LoopVar(v)));
        let body = self.block()?;
        // Pop the loop variable's scope entry (shadowing-safe).
        let at = self
            .scope
            .iter()
            .rposition(|(n, _)| *n == var_name)
            .expect("just pushed");
        self.scope.remove(at);
        Ok(Stmt::for_(
            v,
            lo,
            hi,
            if down { -step_mag } else { step_mag },
            body,
        ))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_keyword("if")?;
        let lhs = self.expr()?;
        let op = match self.bump() {
            Some(Tok::Punct("<")) => CmpOp::Lt,
            Some(Tok::Punct("<=")) => CmpOp::Le,
            Some(Tok::Punct(">")) => CmpOp::Gt,
            Some(Tok::Punct(">=")) => CmpOp::Ge,
            Some(Tok::Punct("==")) => CmpOp::Eq,
            Some(Tok::Punct("!=")) => CmpOp::Ne,
            other => return self.err(format!("expected comparison, found {other:?}")),
        };
        let rhs = self.expr()?;
        let then_ = self.block()?;
        let else_ = if self.keyword_is("else") {
            self.pos += 1;
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond: Cond { lhs, op, rhs },
            then_,
            else_,
        })
    }

    /// `rank` subscripts for array `a`, each affine or a single
    /// indirection through a `long` array.
    fn subscripts(&mut self, a: usize) -> Result<Vec<Index>, ParseError> {
        let rank = self.prog.arrays[a].dims.len();
        let mut idx = Vec::with_capacity(rank);
        for _ in 0..rank {
            self.eat_punct("[")?;
            let e = self.expr()?;
            self.eat_punct("]")?;
            idx.push(self.expr_to_index(e)?);
        }
        Ok(idx)
    }

    fn expr_to_index(&self, e: Expr) -> Result<Index, ParseError> {
        if let Some(l) = expr_to_lin(&e) {
            return Ok(Index::Lin(l));
        }
        // A single load of an integer array with affine subscripts is
        // the `a[b[i]]` indirection.
        if let Expr::LoadI(r) = &e {
            let mut lins = Vec::with_capacity(r.idx.len());
            for ix in &r.idx {
                match ix {
                    Index::Lin(l) => lins.push(l.clone()),
                    Index::Ind { .. } => {
                        return self.err("only one level of indirection is supported")
                    }
                }
            }
            return Ok(Index::Ind {
                array: r.array,
                idx: lins,
            });
        }
        self.err("subscript must be affine or a single long-array element")
    }

    fn lin_expr(&mut self) -> Result<LinExpr, ParseError> {
        let e = self.expr()?;
        match expr_to_lin(&e) {
            Some(l) => Ok(l),
            None => self.err("expected an affine expression"),
        }
    }

    // expr := term (("+"|"-") term)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Punct("+")) => {
                    self.pos += 1;
                    e = fold(BinOp::Add, e, self.term()?);
                }
                Some(Tok::Punct("-")) => {
                    self.pos += 1;
                    e = fold(BinOp::Sub, e, self.term()?);
                }
                _ => return Ok(e),
            }
        }
    }

    // term := factor (("*"|"/"|"%") factor)*
    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("*")) => BinOp::Mul,
                Some(Tok::Punct("/")) => BinOp::Div,
                Some(Tok::Punct("%")) => BinOp::Rem,
                _ => return Ok(e),
            };
            self.pos += 1;
            e = fold(op, e, self.factor()?);
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Punct("-")) => {
                self.pos += 1;
                let inner = self.factor()?;
                Ok(match expr_to_lin(&inner) {
                    Some(l) => Expr::Lin(l.scale(-1)),
                    None => Expr::un(UnOp::Neg, inner),
                })
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Lin(LinExpr::constant(n)))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(Expr::ConstF(v))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                // Intrinsic calls.
                if matches!(self.peek(), Some(Tok::Punct("("))) {
                    return self.call(&name);
                }
                match self.lookup(&name) {
                    Some(Binding::LoopVar(v)) => Ok(Expr::Lin(LinExpr::sym(Sym::Var(v)))),
                    Some(Binding::Param(p)) => Ok(Expr::Lin(LinExpr::sym(Sym::Param(p)))),
                    Some(Binding::FScalar(s)) => Ok(Expr::ScalarF(s)),
                    Some(Binding::IScalar(s)) => Ok(Expr::ScalarI(s)),
                    Some(Binding::Array(a)) => {
                        let idx = self.subscripts(a)?;
                        let r = ArrayRef { array: a, idx };
                        Ok(match self.prog.arrays[a].elem {
                            ElemType::F64 => Expr::LoadF(r),
                            ElemType::I64 => Expr::LoadI(r),
                        })
                    }
                    None => self.err(format!("unknown name {name}")),
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn call(&mut self, name: &str) -> Result<Expr, ParseError> {
        self.eat_punct("(")?;
        let mut args = vec![self.expr()?];
        while matches!(self.peek(), Some(Tok::Punct(","))) {
            self.pos += 1;
            args.push(self.expr()?);
        }
        self.eat_punct(")")?;
        let arity = |n: usize| -> Result<(), ParseError> {
            if args.len() == n {
                Ok(())
            } else {
                self.err(format!("{name} takes {n} argument(s), got {}", args.len()))
            }
        };
        match name {
            "sqrt" => {
                arity(1)?;
                Ok(Expr::un(UnOp::Sqrt, args.remove(0)))
            }
            "ln" => {
                arity(1)?;
                Ok(Expr::un(UnOp::Ln, args.remove(0)))
            }
            "abs" => {
                arity(1)?;
                Ok(Expr::un(UnOp::Abs, args.remove(0)))
            }
            "float" => {
                arity(1)?;
                Ok(Expr::ToF(Box::new(args.remove(0))))
            }
            "int" => {
                arity(1)?;
                Ok(Expr::ToI(Box::new(args.remove(0))))
            }
            "min" => {
                arity(2)?;
                let b = args.pop().unwrap();
                Ok(Expr::bin(BinOp::Min, args.pop().unwrap(), b))
            }
            "max" => {
                arity(2)?;
                let b = args.pop().unwrap();
                Ok(Expr::bin(BinOp::Max, args.pop().unwrap(), b))
            }
            other => self.err(format!("unknown function {other}")),
        }
    }
}

/// Constant-fold a binary node when both sides are linear and the
/// operation preserves linearity (keeps subscripts analyzable).
fn fold(op: BinOp, a: Expr, b: Expr) -> Expr {
    if let (Some(la), Some(lb)) = (expr_to_lin(&a), expr_to_lin(&b)) {
        match op {
            BinOp::Add => return Expr::Lin(la.add(&lb)),
            BinOp::Sub => return Expr::Lin(la.sub(&lb)),
            BinOp::Mul => {
                if let Some(k) = la.as_const() {
                    return Expr::Lin(lb.scale(k));
                }
                if let Some(k) = lb.as_const() {
                    return Expr::Lin(la.scale(k));
                }
            }
            _ => {}
        }
    }
    Expr::bin(op, a, b)
}

/// View an expression as a linear form, if it is one.
fn expr_to_lin(e: &Expr) -> Option<LinExpr> {
    match e {
        Expr::Lin(l) => Some(l.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_program, ArrayBinding};
    use crate::vm::{ArrayData, CostModel, MemVm};

    fn run(src: &str, params: &[i64]) -> (Program, Vec<ArrayBinding>, MemVm) {
        let prog = parse_program(src).expect("parse");
        let (binds, bytes) = ArrayBinding::sequential(&prog, 4096);
        let mut vm = MemVm::new(bytes, 4096);
        run_program(&prog, &binds, params, CostModel::free(), &mut vm);
        (prog, binds, vm)
    }

    #[test]
    fn saxpy_parses_and_runs() {
        let src = "
            program saxpy {
                double x[100];
                double y[100];
                for i = 0 to 100 {
                    x[i] = float(i);
                    y[i] = 2.0 * x[i] + 1.0;
                }
            }";
        let (prog, binds, vm) = run(src, &[]);
        assert_eq!(prog.name, "saxpy");
        assert_eq!(vm.peek_f64(binds[1].base + 10 * 8), 21.0);
    }

    #[test]
    fn symbolic_bounds_and_step() {
        let src = "
            program stepped {
                param n;
                long a[64];
                for i = 0 to n step 2 {
                    a[i] = i;
                }
            }";
        let (_, binds, vm) = run(src, &[10]);
        assert_eq!(vm.peek_i64(binds[0].base + 8 * 8), 8);
        assert_eq!(vm.peek_i64(binds[0].base + 9 * 8), 0);
        assert_eq!(vm.peek_i64(binds[0].base + 10 * 8), 0);
    }

    #[test]
    fn downto_runs_backward() {
        let src = "
            program back {
                long a[10];
                for i = 9 downto -1 {
                    a[i] = 9 - i;
                }
            }";
        let (_, binds, vm) = run(src, &[]);
        assert_eq!(vm.peek_i64(binds[0].base), 9);
        assert_eq!(vm.peek_i64(binds[0].base + 9 * 8), 0);
    }

    #[test]
    fn indirection_and_scalars() {
        let src = "
            program hist {
                long key[16];
                long count[8];
                long k;
                for i = 0 to 16 {
                    key[i] = i % 8;
                }
                for i = 0 to 16 {
                    count[key[i]] = count[key[i]] + 1;
                }
                k = 0;
                for i = 0 to 8 {
                    k = k + count[i];
                }
                count[0] = k;
            }";
        let (_, binds, vm) = run(src, &[]);
        assert_eq!(vm.peek_i64(binds[1].base), 16, "total count");
        assert_eq!(vm.peek_i64(binds[1].base + 8), 2);
    }

    #[test]
    fn multidim_and_conditionals() {
        let src = "
            program cond {
                double c[8][8];
                for i = 0 to 8 {
                    for j = 0 to 8 {
                        if i == j {
                            c[i][j] = 1.0;
                        } else {
                            c[i][j] = 0.0;
                        }
                    }
                }
            }";
        let (_, binds, vm) = run(src, &[]);
        assert_eq!(vm.peek_f64(binds[0].base + (3 * 8 + 3) * 8), 1.0);
        assert_eq!(vm.peek_f64(binds[0].base + (3 * 8 + 4) * 8), 0.0);
    }

    #[test]
    fn intrinsics_work() {
        let src = "
            program math {
                double out[4];
                out[0] = sqrt(16.0);
                out[1] = abs(0.0 - 2.5);
                out[2] = min(3.0, max(1.0, 2.0));
                out[3] = float(int(3.7));
            }";
        let (_, binds, vm) = run(src, &[]);
        assert_eq!(vm.peek_f64(binds[0].base), 4.0);
        assert_eq!(vm.peek_f64(binds[0].base + 8), 2.5);
        assert_eq!(vm.peek_f64(binds[0].base + 16), 2.0);
        assert_eq!(vm.peek_f64(binds[0].base + 24), 3.0);
    }

    #[test]
    fn affine_subscript_arithmetic_folds() {
        let src = "
            program fold {
                double a[100];
                param n;
                for i = 0 to 10 {
                    a[2 * i + 3] = 1.0;
                    a[n - i] = 2.0;
                }
            }";
        let prog = parse_program(src).expect("parse");
        // Both subscripts must have been recognized as affine (no
        // general expressions in subscript position).
        assert!(prog.validate().is_empty());
        let (_, binds, vm) = run(src, &[50]);
        assert_eq!(vm.peek_f64(binds[0].base + 5 * 8), 1.0);
        assert_eq!(vm.peek_f64(binds[0].base + 45 * 8), 2.0);
    }

    #[test]
    fn shadowing_loop_variables() {
        let src = "
            program shadow {
                long a[4];
                for i = 0 to 4 {
                    a[i] = i;
                }
                for i = 0 to 4 {
                    a[i] = a[i] + 10;
                }
            }";
        let (prog, binds, vm) = run(src, &[]);
        assert_eq!(prog.num_vars, 2, "each for gets a fresh variable");
        assert_eq!(vm.peek_i64(binds[0].base + 3 * 8), 13);
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("program p {\n  double a[10];\n  b[0] = 1.0;\n}")
            .expect_err("unknown name");
        assert!(err.message.contains("unknown name b"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_on_nonaffine_subscript() {
        let err = parse_program(
            "program p { double a[10]; double s; for i = 0 to 4 { a[int(s)] = 1.0; } }",
        )
        .expect_err("non-affine subscript");
        assert!(err.message.contains("subscript"));
    }

    #[test]
    fn error_on_double_indirection() {
        let err = parse_program(
            "program p { double a[9]; long b[9]; long c[9];
              for i = 0 to 4 { a[b[c[i]]] = 1.0; } }",
        )
        .expect_err("double indirection");
        assert!(err.message.contains("one level"));
    }

    #[test]
    fn comments_are_ignored() {
        let src = "
            program c { // a comment
                long a[4]; // another
                for i = 0 to 4 { a[i] = 7; } // trailing
            }";
        let (_, binds, vm) = run(src, &[]);
        assert_eq!(vm.peek_i64(binds[0].base), 7);
    }

    #[test]
    fn parsed_program_compiles_cleanly() {
        // The parsed IR must be exactly what the prefetching pass
        // expects: affine refs with analyzable subscripts.
        let src = "
            program stream {
                double x[200000];
                double y[200000];
                for i = 0 to 200000 {
                    y[i] = x[i] * 0.5 + y[i + 0];
                }
            }";
        let prog = parse_program(src).expect("parse");
        assert!(prog.validate().is_empty());
        // Subscripts are Index::Lin, so the compiler can flatten them.
        let Stmt::For(l) = &prog.body[0] else {
            panic!("expected loop")
        };
        let Stmt::Store { dst, .. } = &l.body[0] else {
            panic!("expected store")
        };
        assert!(matches!(dst.idx[0], Index::Lin(_)));
    }
}
