//! Programs: arrays, references, loops, and statements.

use std::fmt;

use crate::expr::{Cond, Expr, LinExpr};

/// Element type of an array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemType {
    /// 64-bit IEEE float.
    F64,
    /// 64-bit signed integer.
    I64,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        8
    }
}

/// Declaration of a (possibly multi-dimensional) array.
///
/// Dimensions are concrete at program-construction time (as in the NAS
/// Fortran sources, where array extents are compile-time constants);
/// loop bounds, in contrast, may be symbolic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name for diagnostics and pretty-printing.
    pub name: String,
    /// Element type.
    pub elem: ElemType,
    /// Extent of each dimension, outermost first (row-major layout).
    pub dims: Vec<i64>,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * self.elem.bytes()
    }

    /// Row-major stride (in elements) of dimension `d`.
    pub fn stride(&self, d: usize) -> i64 {
        self.dims[d + 1..].iter().product()
    }
}

/// One subscript position of an array reference.
#[derive(Clone, Debug, PartialEq)]
pub enum Index {
    /// Affine subscript over loop variables and parameters.
    Lin(LinExpr),
    /// Indirect subscript: the value of an integer array element, itself
    /// addressed by affine subscripts (one level of indirection, e.g.
    /// the `b[i]` in `a[b[i]]`).
    Ind {
        /// The index array.
        array: usize,
        /// Affine subscripts into the index array.
        idx: Vec<LinExpr>,
    },
}

impl Index {
    /// Whether this subscript is indirect.
    pub fn is_indirect(&self) -> bool {
        matches!(self, Index::Ind { .. })
    }
}

/// A reference to one array element.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayRef {
    /// Array id (index into [`Program::arrays`]).
    pub array: usize,
    /// One subscript per dimension, outermost first.
    pub idx: Vec<Index>,
}

impl ArrayRef {
    /// Affine reference: all subscripts linear.
    pub fn affine(array: usize, idx: Vec<LinExpr>) -> Self {
        Self {
            array,
            idx: idx.into_iter().map(Index::Lin).collect(),
        }
    }

    /// Whether any subscript is indirect.
    pub fn is_indirect(&self) -> bool {
        self.idx.iter().any(Index::is_indirect)
    }
}

/// Address operand of a hint statement.
///
/// The compiler emits hints whose address is an array element (possibly
/// past the end of the iteration space); the run-time layer clamps the
/// element index into the array, which is legal precisely because hints
/// are non-binding.
#[derive(Clone, Debug, PartialEq)]
pub struct HintTarget {
    /// The array whose page(s) are named.
    pub target: ArrayRef,
}

/// A counted loop.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    /// Loop variable id (unique within the program).
    pub var: usize,
    /// Inclusive lower bound.
    pub lo: LinExpr,
    /// Exclusive upper bound (for positive steps); for negative steps the
    /// loop runs from `lo` down while `var > hi`.
    pub hi: LinExpr,
    /// Optional second upper bound: the effective bound is
    /// `min(hi, hi_min)` (or `max` for negative steps). Strip-mined
    /// loops produced by the prefetching compiler use this for their
    /// `min(strip_end, n)` inner bounds.
    pub hi_min: Option<LinExpr>,
    /// Non-zero step.
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A counted loop.
    For(Loop),
    /// Store `value` into an array element.
    Store {
        /// Destination element.
        dst: ArrayRef,
        /// Value to store (coerced to the array's element type).
        value: Expr,
    },
    /// Assign a floating-point scalar temporary.
    LetF {
        /// Scalar id.
        dst: usize,
        /// Value.
        value: Expr,
    },
    /// Assign an integer scalar temporary.
    LetI {
        /// Scalar id.
        dst: usize,
        /// Value.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken when the condition holds.
        then_: Vec<Stmt>,
        /// Taken otherwise.
        else_: Vec<Stmt>,
    },
    /// Non-binding prefetch hint for `pages` pages starting at the page
    /// containing the target element.
    Prefetch {
        /// Address operand.
        target: HintTarget,
        /// Number of pages (1 for single-page prefetches, more for the
        /// block form).
        pages: u64,
    },
    /// Non-binding release hint.
    Release {
        /// Address operand.
        target: HintTarget,
        /// Number of pages.
        pages: u64,
    },
    /// Bundled prefetch + release in one system call
    /// (`prefetch_release_block` in Figure 2(b)).
    PrefetchRelease {
        /// Prefetch address operand.
        pf: HintTarget,
        /// Pages to prefetch.
        pf_pages: u64,
        /// Release address operand.
        rel: HintTarget,
        /// Pages to release.
        rel_pages: u64,
    },
}

impl Stmt {
    /// Build a loop statement.
    pub fn for_(var: usize, lo: LinExpr, hi: LinExpr, step: i64, body: Vec<Stmt>) -> Stmt {
        Stmt::For(Loop {
            var,
            lo,
            hi,
            hi_min: None,
            step,
            body,
        })
    }

    /// Build a loop statement with a `min(hi, hi_min)` upper bound.
    pub fn for_min(
        var: usize,
        lo: LinExpr,
        hi: LinExpr,
        hi_min: LinExpr,
        step: i64,
        body: Vec<Stmt>,
    ) -> Stmt {
        Stmt::For(Loop {
            var,
            lo,
            hi,
            hi_min: Some(hi_min),
            step,
            body,
        })
    }
}

/// A whole program: declarations plus a top-level statement list.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name (diagnostics).
    pub name: String,
    /// Array declarations; statement `ArrayRef::array` indexes this.
    pub arrays: Vec<ArrayDecl>,
    /// Names of runtime parameters; `Sym::Param` indexes this.
    pub params: Vec<String>,
    /// Number of loop variables used (ids must be `< num_vars`).
    pub num_vars: usize,
    /// Number of floating-point scalar temporaries.
    pub num_fscalars: usize,
    /// Number of integer scalar temporaries.
    pub num_iscalars: usize,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Create an empty program.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            arrays: Vec::new(),
            params: Vec::new(),
            num_vars: 0,
            num_fscalars: 0,
            num_iscalars: 0,
            body: Vec::new(),
        }
    }

    /// Declare an array, returning its id.
    pub fn array(&mut self, name: &str, elem: ElemType, dims: Vec<i64>) -> usize {
        assert!(
            dims.iter().all(|&d| d > 0),
            "array {name} has a non-positive dimension"
        );
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            elem,
            dims,
        });
        self.arrays.len() - 1
    }

    /// Declare a runtime parameter, returning its id.
    pub fn param(&mut self, name: &str) -> usize {
        self.params.push(name.to_string());
        self.params.len() - 1
    }

    /// Allocate a fresh loop-variable id.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Allocate a fresh floating-point scalar id.
    pub fn fresh_fscalar(&mut self) -> usize {
        self.num_fscalars += 1;
        self.num_fscalars - 1
    }

    /// Allocate a fresh integer scalar id.
    pub fn fresh_iscalar(&mut self) -> usize {
        self.num_iscalars += 1;
        self.num_iscalars - 1
    }

    /// Total bytes of all arrays (the out-of-core data set size).
    pub fn data_bytes(&self) -> u64 {
        self.arrays.iter().map(ArrayDecl::bytes).sum()
    }

    /// Structural sanity checks: ids in range, loop steps non-zero,
    /// subscript arity matching array rank.
    ///
    /// Returns a list of human-readable problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut check_ref = |r: &ArrayRef, problems: &mut Vec<String>| {
            match self.arrays.get(r.array) {
                None => problems.push(format!("reference to undeclared array #{}", r.array)),
                Some(a) => {
                    if r.idx.len() != a.dims.len() {
                        problems.push(format!(
                            "array {} has rank {} but reference has {} subscripts",
                            a.name,
                            a.dims.len(),
                            r.idx.len()
                        ));
                    }
                }
            }
            for ix in &r.idx {
                if let Index::Ind { array, idx } = ix {
                    match self.arrays.get(*array) {
                        None => {
                            problems.push(format!("indirection through undeclared array #{array}"))
                        }
                        Some(a) => {
                            if a.elem != ElemType::I64 {
                                problems.push(format!(
                                    "indirection through non-integer array {}",
                                    a.name
                                ));
                            }
                            if idx.len() != a.dims.len() {
                                problems.push(format!("index array {} rank mismatch", a.name));
                            }
                        }
                    }
                }
            }
        };
        fn walk(
            stmts: &[Stmt],
            prog: &Program,
            check_ref: &mut dyn FnMut(&ArrayRef, &mut Vec<String>),
            problems: &mut Vec<String>,
        ) {
            for s in stmts {
                match s {
                    Stmt::For(l) => {
                        if l.step == 0 {
                            problems.push(format!("loop i{} has zero step", l.var));
                        }
                        if l.var >= prog.num_vars {
                            problems.push(format!("loop variable i{} out of range", l.var));
                        }
                        walk(&l.body, prog, check_ref, problems);
                    }
                    Stmt::Store { dst, value } => {
                        check_ref(dst, problems);
                        value.visit(&mut |e| {
                            if let Expr::LoadF(r) | Expr::LoadI(r) = e {
                                check_ref(r, problems);
                            }
                        });
                    }
                    Stmt::LetF { value, .. } | Stmt::LetI { value, .. } => {
                        value.visit(&mut |e| {
                            if let Expr::LoadF(r) | Expr::LoadI(r) = e {
                                check_ref(r, problems);
                            }
                        });
                    }
                    Stmt::If { cond, then_, else_ } => {
                        for e in [&cond.lhs, &cond.rhs] {
                            e.visit(&mut |e| {
                                if let Expr::LoadF(r) | Expr::LoadI(r) = e {
                                    check_ref(r, problems);
                                }
                            });
                        }
                        walk(then_, prog, check_ref, problems);
                        walk(else_, prog, check_ref, problems);
                    }
                    Stmt::Prefetch { target, pages } | Stmt::Release { target, pages } => {
                        if *pages == 0 {
                            problems.push("hint with zero pages".to_string());
                        }
                        check_ref(&target.target, problems);
                    }
                    Stmt::PrefetchRelease { pf, rel, .. } => {
                        check_ref(&pf.target, problems);
                        check_ref(&rel.target, problems);
                    }
                }
            }
        }
        walk(&self.body, self, &mut check_ref, &mut problems);
        problems
    }

    /// Count statements of each hint kind (test/diagnostic helper).
    pub fn count_hints(&self) -> (usize, usize, usize) {
        fn walk(stmts: &[Stmt], acc: &mut (usize, usize, usize)) {
            for s in stmts {
                match s {
                    Stmt::For(l) => walk(&l.body, acc),
                    Stmt::If { then_, else_, .. } => {
                        walk(then_, acc);
                        walk(else_, acc);
                    }
                    Stmt::Prefetch { .. } => acc.0 += 1,
                    Stmt::Release { .. } => acc.1 += 1,
                    Stmt::PrefetchRelease { .. } => acc.2 += 1,
                    _ => {}
                }
            }
        }
        let mut acc = (0, 0, 0);
        walk(&self.body, &mut acc);
        acc
    }
}

impl fmt::Display for Program {
    /// Pretty-print as pseudo-C, in the style of the paper's Figure 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} {{", self.name)?;
        for (i, a) in self.arrays.iter().enumerate() {
            let t = match a.elem {
                ElemType::F64 => "double",
                ElemType::I64 => "long",
            };
            write!(f, "  {t} {}/*#{i}*/", a.name)?;
            for d in &a.dims {
                write!(f, "[{d}]")?;
            }
            writeln!(f, ";")?;
        }
        fn sub(prog: &Program, r: &ArrayRef) -> String {
            let mut s = prog.arrays[r.array].name.clone();
            for ix in &r.idx {
                match ix {
                    Index::Lin(e) => s.push_str(&format!("[{e}]")),
                    Index::Ind { array, idx } => {
                        let mut inner = prog.arrays[*array].name.clone();
                        for e in idx {
                            inner.push_str(&format!("[{e}]"));
                        }
                        s.push_str(&format!("[{inner}]"));
                    }
                }
            }
            s
        }
        fn expr(prog: &Program, e: &Expr) -> String {
            match e {
                Expr::LoadF(r) | Expr::LoadI(r) => sub(prog, r),
                Expr::ScalarF(i) => format!("f{i}"),
                Expr::ScalarI(i) => format!("n{i}"),
                Expr::Lin(l) => format!("{l}"),
                Expr::ConstF(v) => format!("{v:?}"),
                Expr::Bin(op, a, b) => {
                    let o = match op {
                        crate::expr::BinOp::Add => "+",
                        crate::expr::BinOp::Sub => "-",
                        crate::expr::BinOp::Mul => "*",
                        crate::expr::BinOp::Div => "/",
                        crate::expr::BinOp::Rem => "%",
                        crate::expr::BinOp::Min => {
                            return format!("min({}, {})", expr(prog, a), expr(prog, b))
                        }
                        crate::expr::BinOp::Max => {
                            return format!("max({}, {})", expr(prog, a), expr(prog, b))
                        }
                    };
                    format!("({} {o} {})", expr(prog, a), expr(prog, b))
                }
                Expr::Un(op, a) => {
                    let o = match op {
                        crate::expr::UnOp::Neg => "-",
                        crate::expr::UnOp::Sqrt => "sqrt",
                        crate::expr::UnOp::Ln => "log",
                        crate::expr::UnOp::Abs => "fabs",
                    };
                    format!("{o}({})", expr(prog, a))
                }
                Expr::ToF(a) => format!("(double)({})", expr(prog, a)),
                Expr::ToI(a) => format!("(long)({})", expr(prog, a)),
            }
        }
        fn stmts(
            prog: &Program,
            list: &[Stmt],
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let pad = "  ".repeat(depth);
            for s in list {
                match s {
                    Stmt::For(l) => {
                        let cmp = if l.step > 0 { "<" } else { ">" };
                        let hi_str = match &l.hi_min {
                            None => format!("{}", l.hi),
                            Some(m) => {
                                format!("{}({}, {m})", if l.step > 0 { "min" } else { "max" }, l.hi)
                            }
                        };
                        let inc = if l.step == 1 {
                            format!("i{}++", l.var)
                        } else {
                            format!("i{} += {}", l.var, l.step)
                        };
                        writeln!(
                            f,
                            "{pad}for (i{v} = {lo}; i{v} {cmp} {hi_str}; {inc}) {{",
                            v = l.var,
                            lo = l.lo
                        )?;
                        stmts(prog, &l.body, depth + 1, f)?;
                        writeln!(f, "{pad}}}")?;
                    }
                    Stmt::Store { dst, value } => {
                        writeln!(f, "{pad}{} = {};", sub(prog, dst), expr(prog, value))?;
                    }
                    Stmt::LetF { dst, value } => {
                        writeln!(f, "{pad}f{dst} = {};", expr(prog, value))?;
                    }
                    Stmt::LetI { dst, value } => {
                        writeln!(f, "{pad}n{dst} = {};", expr(prog, value))?;
                    }
                    Stmt::If { cond, then_, else_ } => {
                        let o = match cond.op {
                            crate::expr::CmpOp::Lt => "<",
                            crate::expr::CmpOp::Le => "<=",
                            crate::expr::CmpOp::Gt => ">",
                            crate::expr::CmpOp::Ge => ">=",
                            crate::expr::CmpOp::Eq => "==",
                            crate::expr::CmpOp::Ne => "!=",
                        };
                        writeln!(
                            f,
                            "{pad}if ({} {o} {}) {{",
                            expr(prog, &cond.lhs),
                            expr(prog, &cond.rhs)
                        )?;
                        stmts(prog, then_, depth + 1, f)?;
                        if !else_.is_empty() {
                            writeln!(f, "{pad}}} else {{")?;
                            stmts(prog, else_, depth + 1, f)?;
                        }
                        writeln!(f, "{pad}}}")?;
                    }
                    Stmt::Prefetch { target, pages } => {
                        if *pages == 1 {
                            writeln!(f, "{pad}prefetch(&{});", sub(prog, &target.target))?;
                        } else {
                            writeln!(
                                f,
                                "{pad}prefetch_block(&{}, {pages});",
                                sub(prog, &target.target)
                            )?;
                        }
                    }
                    Stmt::Release { target, pages } => {
                        if *pages == 1 {
                            writeln!(f, "{pad}release(&{});", sub(prog, &target.target))?;
                        } else {
                            writeln!(
                                f,
                                "{pad}release_block(&{}, {pages});",
                                sub(prog, &target.target)
                            )?;
                        }
                    }
                    Stmt::PrefetchRelease {
                        pf,
                        pf_pages,
                        rel,
                        rel_pages,
                    } => {
                        writeln!(
                            f,
                            "{pad}prefetch_release_block(&{}, &{}, {pf_pages}/*pf*/, {rel_pages}/*rel*/);",
                            sub(prog, &pf.target),
                            sub(prog, &rel.target)
                        )?;
                    }
                }
            }
            Ok(())
        }
        stmts(self, &self.body, 1, f)?;
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{lin, var};

    fn simple_program() -> Program {
        let mut p = Program::new("axpy");
        let x = p.array("x", ElemType::F64, vec![100]);
        let y = p.array("y", ElemType::F64, vec![100]);
        let i = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(100),
            1,
            vec![Stmt::Store {
                dst: ArrayRef::affine(y, vec![var(i)]),
                value: Expr::add(
                    Expr::mul(
                        Expr::ConstF(2.0),
                        Expr::LoadF(ArrayRef::affine(x, vec![var(i)])),
                    ),
                    Expr::LoadF(ArrayRef::affine(y, vec![var(i)])),
                ),
            }],
        )];
        p
    }

    #[test]
    fn valid_program_has_no_problems() {
        assert!(simple_program().validate().is_empty());
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut p = simple_program();
        if let Stmt::For(l) = &mut p.body[0] {
            if let Stmt::Store { dst, .. } = &mut l.body[0] {
                dst.idx.push(Index::Lin(lin(0)));
            }
        }
        let problems = p.validate();
        assert!(problems.iter().any(|s| s.contains("rank")));
    }

    #[test]
    fn zero_step_detected() {
        let mut p = simple_program();
        if let Stmt::For(l) = &mut p.body[0] {
            l.step = 0;
        }
        assert!(p.validate().iter().any(|s| s.contains("zero step")));
    }

    #[test]
    fn indirection_through_float_array_detected() {
        let mut p = Program::new("bad");
        let a = p.array("a", ElemType::F64, vec![10]);
        let b = p.array("b", ElemType::F64, vec![10]); // wrong: float index array
        let i = p.fresh_var();
        p.body = vec![Stmt::for_(
            i,
            lin(0),
            lin(10),
            1,
            vec![Stmt::Store {
                dst: ArrayRef {
                    array: a,
                    idx: vec![Index::Ind {
                        array: b,
                        idx: vec![var(i)],
                    }],
                },
                value: Expr::ConstF(0.0),
            }],
        )];
        assert!(p.validate().iter().any(|s| s.contains("non-integer array")));
    }

    #[test]
    fn stride_is_row_major() {
        let a = ArrayDecl {
            name: "c".into(),
            elem: ElemType::F64,
            dims: vec![10, 20, 30],
        };
        assert_eq!(a.stride(0), 600);
        assert_eq!(a.stride(1), 30);
        assert_eq!(a.stride(2), 1);
        assert_eq!(a.len(), 6000);
        assert_eq!(a.bytes(), 48000);
    }

    #[test]
    fn display_produces_pseudo_c() {
        let p = simple_program();
        let s = p.to_string();
        assert!(s.contains("for (i0 = 0; i0 < 100; i0++)"));
        assert!(s.contains("y[i0] = ((2.0 * x[i0]) + y[i0]);"));
    }

    #[test]
    fn count_hints_walks_nesting() {
        let mut p = simple_program();
        let x = 0;
        if let Stmt::For(l) = &mut p.body[0] {
            l.body.push(Stmt::Prefetch {
                target: HintTarget {
                    target: ArrayRef::affine(x, vec![lin(0)]),
                },
                pages: 4,
            });
            l.body.push(Stmt::Release {
                target: HintTarget {
                    target: ArrayRef::affine(x, vec![lin(0)]),
                },
                pages: 1,
            });
        }
        assert_eq!(p.count_hints(), (1, 1, 0));
    }
}
