//! Expressions: linear index forms and general arithmetic.

use std::fmt;

use crate::program::ArrayRef;

/// A symbol a linear expression may reference: a loop variable or a
/// compile-time-unknown program parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// Loop variable by id.
    Var(usize),
    /// Program parameter by id (value known only at run time).
    Param(usize),
}

/// A linear (affine) integer expression `c + Σ coeff·sym`.
///
/// Linear forms appear wherever the compiler must reason symbolically:
/// loop bounds, affine subscripts, and hint addresses. Terms are kept
/// sorted by symbol with no zero coefficients and no duplicates, so
/// structural equality is semantic equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// Constant term.
    pub c: i64,
    /// Sorted, deduplicated `(coefficient, symbol)` terms.
    pub terms: Vec<(i64, Sym)>,
}

impl LinExpr {
    /// Normalize: sort, merge duplicates, drop zero coefficients.
    fn normalize(mut self) -> Self {
        self.terms.sort_by_key(|&(_, s)| s);
        let mut out: Vec<(i64, Sym)> = Vec::with_capacity(self.terms.len());
        for (k, s) in self.terms {
            match out.last_mut() {
                Some((lk, ls)) if *ls == s => *lk += k,
                _ => out.push((k, s)),
            }
        }
        out.retain(|&(k, _)| k != 0);
        self.terms = out;
        self
    }

    /// The constant `n`.
    pub fn constant(n: i64) -> Self {
        Self {
            c: n,
            terms: vec![],
        }
    }

    /// A bare symbol.
    pub fn sym(s: Sym) -> Self {
        Self {
            c: 0,
            terms: vec![(1, s)],
        }
    }

    /// Whether the expression is a compile-time constant.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.c)
    }

    /// Coefficient of `s` (zero if absent).
    pub fn coeff(&self, s: Sym) -> i64 {
        self.terms
            .iter()
            .find(|&&(_, t)| t == s)
            .map_or(0, |&(k, _)| k)
    }

    /// Whether the expression mentions `s`.
    pub fn mentions(&self, s: Sym) -> bool {
        self.coeff(s) != 0
    }

    /// Whether the expression mentions any parameter (i.e. has a value
    /// the compiler cannot know).
    pub fn symbolic(&self) -> bool {
        self.terms.iter().any(|&(_, s)| matches!(s, Sym::Param(_)))
    }

    /// All symbols mentioned.
    pub fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.terms.iter().map(|&(_, s)| s)
    }

    /// Sum of two linear forms.
    #[allow(clippy::should_implement_trait)]
    pub fn add(&self, o: &LinExpr) -> LinExpr {
        let mut t = self.terms.clone();
        t.extend_from_slice(&o.terms);
        LinExpr {
            c: self.c + o.c,
            terms: t,
        }
        .normalize()
    }

    /// Difference of two linear forms.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(&self, o: &LinExpr) -> LinExpr {
        self.add(&o.scale(-1))
    }

    /// Multiply by a constant.
    pub fn scale(&self, k: i64) -> LinExpr {
        LinExpr {
            c: self.c * k,
            terms: self.terms.iter().map(|&(a, s)| (a * k, s)).collect(),
        }
        .normalize()
    }

    /// Add a constant.
    pub fn offset(&self, k: i64) -> LinExpr {
        LinExpr {
            c: self.c + k,
            terms: self.terms.clone(),
        }
    }

    /// Substitute symbol `s` with another linear form.
    pub fn subst(&self, s: Sym, with: &LinExpr) -> LinExpr {
        let k = self.coeff(s);
        if k == 0 {
            return self.clone();
        }
        let mut rest: Vec<(i64, Sym)> = self
            .terms
            .iter()
            .copied()
            .filter(|&(_, t)| t != s)
            .collect();
        let scaled = with.scale(k);
        rest.extend_from_slice(&scaled.terms);
        LinExpr {
            c: self.c + scaled.c,
            terms: rest,
        }
        .normalize()
    }

    /// Evaluate under an environment mapping each symbol to a value.
    pub fn eval(&self, env: &dyn Fn(Sym) -> i64) -> i64 {
        self.c + self.terms.iter().map(|&(k, s)| k * env(s)).sum::<i64>()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.c != 0 || self.terms.is_empty() {
            write!(f, "{}", self.c)?;
            first = false;
        }
        for &(k, s) in &self.terms {
            if !first {
                write!(f, "{}", if k < 0 { " - " } else { " + " })?;
            } else if k < 0 {
                write!(f, "-")?;
            }
            first = false;
            let mag = k.unsigned_abs();
            if mag != 1 {
                write!(f, "{mag}*")?;
            }
            match s {
                Sym::Var(v) => write!(f, "i{v}")?,
                Sym::Param(p) => write!(f, "P{p}")?,
            }
        }
        Ok(())
    }
}

/// Convenience: the constant linear form `n`.
pub fn lin(n: i64) -> LinExpr {
    LinExpr::constant(n)
}

/// Convenience: the loop variable `v` as a linear form.
pub fn var(v: usize) -> LinExpr {
    LinExpr::sym(Sym::Var(v))
}

/// Convenience: the parameter `p` as a linear form.
pub fn param(p: usize) -> LinExpr {
    LinExpr::sym(Sym::Param(p))
}

/// Binary arithmetic operators for general expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float division, or truncating integer division).
    Div,
    /// Remainder (integers only).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Unary operators for general expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Square root (floats).
    Sqrt,
    /// Natural logarithm (floats).
    Ln,
    /// Absolute value.
    Abs,
}

/// Comparison operators for conditionals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A general (non-linear) expression evaluated per loop iteration.
///
/// Array loads inside expressions are the *references* the compiler
/// analyzes; everything else is arithmetic that only contributes cost.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Load a floating-point array element.
    LoadF(ArrayRef),
    /// Load an integer array element.
    LoadI(ArrayRef),
    /// Read a floating-point scalar temporary.
    ScalarF(usize),
    /// Read an integer scalar temporary.
    ScalarI(usize),
    /// A linear form over loop variables and parameters (integer).
    Lin(LinExpr),
    /// Floating-point literal.
    ConstF(f64),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Convert an integer expression to floating point.
    ToF(Box<Expr>),
    /// Truncate a floating-point expression to an integer.
    ToI(Box<Expr>),
}

impl Expr {
    /// Shorthand for a binary node.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Shorthand for `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// Shorthand for `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// Shorthand for `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// Shorthand for `a / b`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Div, a, b)
    }

    /// Shorthand for a unary node.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }

    /// Walk the expression tree, applying `f` to every node.
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Un(_, a) | Expr::ToF(a) | Expr::ToI(a) => a.visit(f),
            _ => {}
        }
    }
}

/// A comparison between two expressions, used by `Stmt::If`.
#[derive(Clone, Debug, PartialEq)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: Expr,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Expr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_normalizes_duplicates_and_zeros() {
        let e = var(0).add(&var(0)).add(&lin(3)).sub(&var(0).scale(2));
        assert_eq!(e, lin(3));
        assert_eq!(e.as_const(), Some(3));
    }

    #[test]
    fn coeff_and_mentions() {
        let e = var(1).scale(4).add(&param(0).scale(-2)).offset(7);
        assert_eq!(e.coeff(Sym::Var(1)), 4);
        assert_eq!(e.coeff(Sym::Param(0)), -2);
        assert_eq!(e.coeff(Sym::Var(9)), 0);
        assert!(e.mentions(Sym::Var(1)));
        assert!(!e.mentions(Sym::Var(0)));
        assert!(e.symbolic());
        assert!(!var(0).symbolic());
    }

    #[test]
    fn subst_replaces_symbol() {
        // 3*i + 1 with i := 2*j + 5 => 6*j + 16
        let e = var(0).scale(3).offset(1);
        let r = e.subst(Sym::Var(0), &var(1).scale(2).offset(5));
        assert_eq!(r, var(1).scale(6).offset(16));
    }

    #[test]
    fn subst_of_absent_symbol_is_identity() {
        let e = var(0).offset(1);
        assert_eq!(e.subst(Sym::Var(5), &lin(99)), e);
    }

    #[test]
    fn eval_uses_environment() {
        let e = var(0).scale(2).add(&param(1).scale(3)).offset(-1);
        let v = e.eval(&|s| match s {
            Sym::Var(0) => 10,
            Sym::Param(1) => 4,
            _ => 0,
        });
        assert_eq!(v, 2 * 10 + 3 * 4 - 1);
    }

    #[test]
    fn display_is_readable() {
        let e = var(0).scale(2).sub(&param(3)).offset(5);
        assert_eq!(e.to_string(), "5 + 2*i0 - P3");
        assert_eq!(lin(0).to_string(), "0");
        assert_eq!(var(2).scale(-1).to_string(), "-i2");
    }

    #[test]
    fn expr_visit_reaches_all_nodes() {
        let e = Expr::add(
            Expr::mul(Expr::ConstF(2.0), Expr::ScalarF(0)),
            Expr::un(UnOp::Sqrt, Expr::ConstF(9.0)),
        );
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 6);
    }
}
