//! Property-based testing of the observability layer.
//!
//! The contract under test: **observation never perturbs**. Enabling
//! the metrics layer and the event trace must change no timestamp, no
//! time-ledger entry, and no data — the instrumented machine is
//! bit-identical to the bare one, under fault injection too. On top of
//! that, the collected telemetry must satisfy its own invariants: the
//! prefetch lifecycle ledger partitions the issue decisions exactly,
//! the Figure-5 attribution covers every elapsed nanosecond, and the
//! Chrome-trace exporter emits parseable JSON.
//!
//! Sequences are generated with the simulator's deterministic `SimRng`
//! so the suite builds offline; every failure names a replayable seed.

use std::collections::HashMap;

use oocp::obs::Json;
use oocp::os::{chrome_trace_json, FaultPlan, Machine, MachineParams};
use oocp::sim::time::MILLISECOND;
use oocp::sim::SimRng;
use oocp_bench::{run_workload, run_workload_faulted, Config, Mode};
use oocp_nas::{build, App};

#[derive(Clone, Debug)]
enum Op {
    Load(u64),
    Store(u64, i64),
    Prefetch(u64, u64),
    Release(u64, u64),
    Tick(u64),
}

const PAGES: u64 = 96;
const FRAMES: u64 = 24;

fn random_ops(g: &mut SimRng, max_len: u64) -> Vec<Op> {
    let len = 20 + g.next_below(max_len) as usize;
    (0..len)
        .map(|_| {
            let elem = |g: &mut SimRng| g.next_below(PAGES * 4096 / 8) * 8;
            match g.next_below(5) {
                0 => Op::Load(elem(g)),
                1 => Op::Store(elem(g), g.next_u64() as i64),
                2 => Op::Prefetch(g.next_below(PAGES), 1 + g.next_below(7)),
                3 => Op::Release(g.next_below(PAGES), 1 + g.next_below(7)),
                _ => Op::Tick(1 + g.next_below(999_999)),
            }
        })
        .collect()
}

fn machine() -> Machine {
    let mut p = MachineParams::small();
    p.resident_limit = FRAMES;
    p.demand_reserve = 2;
    p.low_water = 3;
    p.high_water = 6;
    Machine::new(p, PAGES * 4096)
}

fn apply(m: &mut Machine, op: &Op) {
    match *op {
        Op::Load(a) => {
            m.load_i64(a);
        }
        Op::Store(a, v) => m.store_i64(a, v),
        Op::Prefetch(p, n) => m.sys_prefetch(p, n),
        Op::Release(p, n) => m.sys_release(p, n),
        Op::Tick(ns) => m.tick_user(ns),
    }
}

fn random_plan(g: &mut SimRng) -> FaultPlan {
    let mut plan = FaultPlan::none(g.next_u64()).with_errors(
        g.next_f64() * 0.05,
        g.next_f64() * 0.10,
        g.next_f64() * 0.05,
    );
    if g.next_f64() < 0.5 {
        plan = plan.with_stragglers(
            g.next_f64() * 0.10,
            2.0 + g.next_f64() * 8.0,
            g.next_below(20) * MILLISECOND,
        );
    }
    plan
}

/// The instrumented machine (metrics + trace) tracks the bare one
/// step-for-step: same clock, same time ledger, same fault counters,
/// same data — with and without an active fault plan.
#[test]
fn observation_is_invisible_to_the_run() {
    let mut g = SimRng::new(0x0B_0001);
    for case in 0..96 {
        let plan = (case % 3 == 0).then(|| random_plan(&mut g));
        let ops = random_ops(&mut g, 230);
        let mut bare = machine();
        let mut inst = machine();
        inst.enable_metrics();
        inst.enable_trace(64);
        if let Some(plan) = &plan {
            bare.set_fault_plan(plan);
            inst.set_fault_plan(plan);
        }
        let mut shadow: HashMap<u64, i64> = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            apply(&mut bare, op);
            apply(&mut inst, op);
            if let Op::Store(a, v) = *op {
                shadow.insert(a, v);
            }
            assert_eq!(
                bare.now(),
                inst.now(),
                "case {case} step {step}: observation moved the clock"
            );
        }
        bare.finish();
        inst.finish();
        assert_eq!(bare.now(), inst.now(), "case {case}: finish diverged");
        assert_eq!(
            bare.breakdown(),
            inst.breakdown(),
            "case {case}: time ledger diverged"
        );
        assert_eq!(
            bare.stats().hard_faults,
            inst.stats().hard_faults,
            "case {case}"
        );
        assert_eq!(
            bare.stats().prefetched_hits,
            inst.stats().prefetched_hits,
            "case {case}"
        );
        for (&addr, &v) in &shadow {
            assert_eq!(
                inst.peek_i64(addr),
                v,
                "case {case}: data diverged at {addr}"
            );
        }
        // The telemetry the instrumented run collected is coherent.
        let report = inst.metrics_report().expect("metrics were enabled");
        assert!(
            report.partition_ok(),
            "case {case}: ledger outcomes {} + open {} != entries {}",
            report.ledger.sum(),
            report.ledger_open,
            report.ledger_entries
        );
        assert_eq!(
            report.ledger_open, 0,
            "case {case}: finish() closes entries"
        );
        let attr = inst.attribution();
        assert_eq!(
            attr.total(),
            inst.now(),
            "case {case}: attribution must cover the clock exactly"
        );
    }
}

/// Full-kernel property: with metrics enabled, the ledger partitions
/// every prefetch issue decision and the attribution covers the clock —
/// fault-free and under random fault plans, where drops and retries
/// exercise the error-path ledger closings.
#[test]
fn kernel_ledger_partitions_fault_free_and_faulted() {
    let mut g = SimRng::new(0x0B_0002);
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    cfg.metrics = true;
    for app in [App::Embar, App::Buk] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let base = run_workload(&w, &cfg, Mode::Prefetch);
        base.verified.as_ref().expect("fault-free run verifies");
        let mut runs = vec![("fault-free".to_string(), base)];
        for case in 0..3 {
            let plan = random_plan(&mut g);
            let r = run_workload_faulted(&w, &cfg, Mode::Prefetch, &plan);
            r.verified
                .as_ref()
                .unwrap_or_else(|e| panic!("{app:?} case {case}: {e}"));
            runs.push((format!("case {case} ({plan:?})"), r));
        }
        for (name, r) in &runs {
            let obs = r.obs.as_ref().expect("metrics were enabled");
            assert!(
                obs.partition_ok(),
                "{app:?} {name}: ledger outcomes {} + open {} != entries {}",
                obs.ledger.sum(),
                obs.ledger_open,
                obs.ledger_entries
            );
            assert_eq!(obs.ledger_open, 0, "{app:?} {name}: entries left open");
            assert!(obs.ledger_entries > 0, "{app:?} {name}: nothing was issued");
            assert_eq!(
                r.attr.total(),
                r.total(),
                "{app:?} {name}: attribution must cover the clock"
            );
        }
    }
}

/// Enabling metrics must not change the kernel's final checksum or a
/// single nanosecond of its timeline (the bench-level restatement of
/// timing neutrality, including the run-time layer in the loop).
#[test]
fn kernel_metrics_are_timing_neutral() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    for mode in [Mode::Original, Mode::Prefetch, Mode::PrefetchAdaptive] {
        let bare = run_workload(&w, &cfg, mode);
        let mut icfg = cfg;
        icfg.metrics = true;
        let inst = run_workload(&w, &icfg, mode);
        assert_eq!(bare.time, inst.time, "{mode:?}: time ledger diverged");
        assert_eq!(bare.checksum, inst.checksum, "{mode:?}: data diverged");
        assert!(bare.obs.is_none() && inst.obs.is_some());
    }
}

/// `LatencyHist::merge` is the histogram's monoid operation — `perfgate`
/// and the report aggregators lean on it, so pin down its algebra on
/// random sample sets: commutativity, associativity, exact count/sum/
/// min/max aggregation, and quantile sanity (a merged p95/p99 can land
/// in no bucket above the highest bucket any part used).
#[test]
fn latency_hist_merge_algebra() {
    use oocp::obs::LatencyHist;

    let random_hist = |g: &mut SimRng| {
        let mut h = LatencyHist::default();
        let n = g.next_below(200);
        for _ in 0..n {
            // Spread samples across the full log2 range, not just the
            // low buckets: pick a scale, then a value at that scale.
            let bits = g.next_below(40);
            h.record(g.next_below((1u64 << bits).max(1)));
        }
        h
    };
    let mut g = SimRng::new(0x0B_0004);
    for case in 0..128 {
        let (a, b, c) = (
            random_hist(&mut g),
            random_hist(&mut g),
            random_hist(&mut g),
        );

        // Commutativity: a ⊕ b == b ⊕ a, bit-for-bit.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "case {case}: merge must commute");

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "case {case}: merge must associate");

        // Exact aggregates: count and sum add; min/max combine.
        assert_eq!(
            ab_c.count(),
            a.count() + b.count() + c.count(),
            "case {case}"
        );
        assert_eq!(
            ab_c.sum_ns(),
            a.sum_ns() + b.sum_ns() + c.sum_ns(),
            "case {case}"
        );
        if ab_c.count() > 0 {
            assert_eq!(
                ab_c.min(),
                [&a, &b, &c]
                    .iter()
                    .filter(|h| h.count() > 0)
                    .map(|h| h.min())
                    .min()
                    .expect("some part is non-empty"),
                "case {case}: min must be the min of the parts"
            );
            assert_eq!(
                ab_c.max(),
                [&a, &b, &c]
                    .iter()
                    .map(|h| h.max())
                    .max()
                    .expect("non-empty"),
                "case {case}: max must be the max of the parts"
            );
        }

        // Quantile bound: a quantile of the merge is a bucket upper
        // edge (clamped to the true max), so it can never exceed the
        // largest bucket edge any part's own samples reached.
        let part_ceiling = [&a, &b, &c]
            .iter()
            .filter(|h| h.count() > 0)
            .map(|h| LatencyHist::bucket_bound(LatencyHist::bucket_of(h.max())))
            .max()
            .unwrap_or(0);
        for q in [ab_c.p50(), ab_c.p95(), ab_c.p99()] {
            assert!(
                q <= part_ceiling,
                "case {case}: merged quantile {q} above every part's bucket \
                 ceiling {part_ceiling}"
            );
        }
        // And each merged quantile is at least the smallest part's p50
        // floor: monotone in rank, never below the global min.
        if ab_c.count() > 0 {
            assert!(ab_c.p50() >= ab_c.min(), "case {case}");
            assert!(ab_c.p95() >= ab_c.p50(), "case {case}: quantiles monotone");
            assert!(ab_c.p99() >= ab_c.p95(), "case {case}: quantiles monotone");
        }
    }
}

/// The sim-time sampler is deterministic and timing-neutral: the same
/// seed produces a bit-identical time-series ring (row for row), and
/// attaching the sampler changes no timestamp and no data relative to
/// an unsampled run. Rows land on contiguous interval boundaries.
#[test]
fn sampled_time_series_is_deterministic_and_timing_neutral() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    cfg.metrics = true;
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    let bare = run_workload(&w, &cfg, Mode::Prefetch);
    let mut scfg = cfg;
    scfg.sampler = Some((oocp_bench::SAMPLE_INTERVAL_NS, oocp_bench::SAMPLE_RING_CAP));
    let a = run_workload(&w, &scfg, Mode::Prefetch);
    let b = run_workload(&w, &scfg, Mode::Prefetch);

    // Timing neutrality: the sampler is an observer, not a participant.
    assert_eq!(bare.time, a.time, "sampler moved the time ledger");
    assert_eq!(bare.checksum, a.checksum, "sampler changed the data");
    assert!(bare.telemetry.is_none() && a.telemetry.is_some());

    // Determinism: two runs with the same seed agree bit-for-bit.
    let (reg_a, ring_a) = a.telemetry.as_ref().expect("sampler attached");
    let (reg_b, ring_b) = b.telemetry.as_ref().expect("sampler attached");
    assert_eq!(reg_a.values(), reg_b.values(), "registries diverged");
    assert_eq!(ring_a.rows(), ring_b.rows(), "time-series rings diverged");
    assert_eq!(ring_a.dropped(), ring_b.dropped());
    assert!(!ring_a.is_empty(), "a multi-second run must sample rows");

    // Rows are stamped at contiguous sampling-interval boundaries, and
    // every row is as wide as the registry's scalar schema.
    for w2 in ring_a.rows().windows(2) {
        assert_eq!(
            w2[1].0 - w2[0].0,
            oocp_bench::SAMPLE_INTERVAL_NS,
            "sample stamps must advance by exactly one interval"
        );
    }
    for (_, row) in ring_a.rows() {
        assert_eq!(row.len(), reg_a.defs().len(), "row width != schema");
    }
}

/// `MetricsRegistry::merge` follows the same algebra the per-disk stats
/// and `perfgate` aggregation rely on: counters add, gauges take the
/// max, histograms fold via `LatencyHist::merge` — and the whole merge
/// commutes, so aggregation order never matters.
#[test]
fn registry_merge_matches_latency_hist_algebra() {
    use oocp::obs::MetricsRegistry;

    let random_reg = |g: &mut SimRng| {
        let mut r = MetricsRegistry::new();
        let c0 = r.counter("c0", "test counter 0");
        let c1 = r.counter("c1", "test counter 1");
        let g0 = r.gauge("g0", "test gauge");
        let h0 = r.hist("h0", "test histogram");
        r.set(c0, g.next_below(1_000_000));
        r.add(c1, g.next_below(1_000));
        r.set(g0, g.next_below(500));
        for _ in 0..g.next_below(100) {
            let bits = g.next_below(40);
            r.record(h0, g.next_below((1u64 << bits).max(1)));
        }
        r
    };
    let mut g = SimRng::new(0x0B_0005);
    for case in 0..64 {
        let (a, b) = (random_reg(&mut g), random_reg(&mut g));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.values(), ba.values(), "case {case}: merge must commute");
        assert_eq!(
            ab.hists(),
            ba.hists(),
            "case {case}: hist merge must commute"
        );

        // Counters add, gauges max.
        assert_eq!(ab.get(0), a.get(0) + b.get(0), "case {case}: counter");
        assert_eq!(ab.get(1), a.get(1) + b.get(1), "case {case}: counter");
        assert_eq!(ab.get(2), a.get(2).max(b.get(2)), "case {case}: gauge");

        // The merged histogram is exactly LatencyHist::merge of the parts.
        let mut expect = a.hists()[0].2;
        expect.merge(&b.hists()[0].2);
        assert_eq!(
            ab.hists()[0].2,
            expect,
            "case {case}: registry hist merge must match LatencyHist::merge"
        );
        assert_eq!(
            ab.hists()[0].2.count(),
            a.hists()[0].2.count() + b.hists()[0].2.count(),
            "case {case}"
        );
    }

    // Schema mismatch is a programming error and must panic loudly.
    let mismatch = std::panic::catch_unwind(|| {
        let mut x = MetricsRegistry::new();
        x.counter("a", "");
        let mut y = MetricsRegistry::new();
        y.gauge("a", "");
        x.merge(&y);
    });
    assert!(mismatch.is_err(), "mismatched schemas must not merge");
}

/// The Chrome-trace exporter emits valid JSON for arbitrary traces:
/// parseable by the zero-dependency parser, `traceEvents` an array, and
/// the ring's drop count surfaced verbatim.
#[test]
fn chrome_trace_export_is_valid_json_for_random_traces() {
    let mut g = SimRng::new(0x0B_0003);
    for case in 0..32 {
        let ops = random_ops(&mut g, 200);
        let mut m = machine();
        // Small ring so wraparound (dropped records) is exercised.
        m.enable_trace(16 + g.next_below(48) as usize);
        if case % 4 == 0 {
            m.set_fault_plan(&random_plan(&mut g));
        }
        for op in &ops {
            apply(&mut m, op);
        }
        m.finish();
        let trace = m.take_trace().expect("trace was enabled");
        let dropped = trace.dropped();
        let text = chrome_trace_json(&trace);
        let doc = oocp::obs::json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: exporter emitted invalid JSON: {e}"));
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("case {case}: no traceEvents array"));
        assert!(!events.is_empty(), "case {case}: empty trace");
        assert_eq!(
            doc.get("dropped_records").and_then(Json::as_u64),
            Some(dropped),
            "case {case}: drop count must be surfaced"
        );
    }
}
