//! Property-based testing of the OS substrate.
//!
//! Drives the machine with random sequences of touches, hints, and
//! computation, checking after every step that (a) data is never
//! corrupted (against a shadow model), (b) frame accounting never
//! exceeds physical memory, (c) the time ledger always covers the
//! clock, and (d) the machine never wedges.
//!
//! Sequences are generated with the simulator's deterministic `SimRng`
//! so the suite builds offline; every failure names a replayable seed.

use std::collections::HashMap;

use oocp::os::{Machine, MachineParams};
use oocp::sim::SimRng;

#[derive(Clone, Debug)]
enum Op {
    Load(u64),
    Store(u64, i64),
    Prefetch(u64, u64),
    Release(u64, u64),
    PrefetchRelease(u64, u64, u64, u64),
    Tick(u64),
}

const PAGES: u64 = 96;
const FRAMES: u64 = 24;

fn random_op(g: &mut SimRng) -> Op {
    let elem = |g: &mut SimRng| g.next_below(PAGES * 4096 / 8) * 8;
    let page = |g: &mut SimRng| g.next_below(PAGES);
    let count = |g: &mut SimRng| 1 + g.next_below(7);
    match g.next_below(6) {
        0 => Op::Load(elem(g)),
        1 => Op::Store(elem(g), g.next_u64() as i64),
        2 => Op::Prefetch(page(g), count(g)),
        3 => Op::Release(page(g), count(g)),
        4 => Op::PrefetchRelease(page(g), count(g), page(g), 1 + g.next_below(3)),
        _ => Op::Tick(1 + g.next_below(999_999)),
    }
}

fn random_ops(g: &mut SimRng, max_len: u64) -> Vec<Op> {
    let len = 1 + g.next_below(max_len) as usize;
    (0..len).map(|_| random_op(g)).collect()
}

fn machine() -> Machine {
    let mut p = MachineParams::small();
    p.resident_limit = FRAMES;
    p.demand_reserve = 2;
    p.low_water = 3;
    p.high_water = 6;
    Machine::new(p, PAGES * 4096)
}

#[test]
fn machine_survives_arbitrary_op_sequences() {
    let mut g = SimRng::new(0x05_0001);
    for case in 0..256 {
        let ops = random_ops(&mut g, 250);
        let mut m = machine();
        let mut shadow: HashMap<u64, i64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Load(addr) => {
                    let got = m.load_i64(addr);
                    let want = shadow.get(&addr).copied().unwrap_or(0);
                    assert_eq!(got, want, "case {case}: load at {addr} corrupted");
                }
                Op::Store(addr, v) => {
                    m.store_i64(addr, v);
                    shadow.insert(addr, v);
                }
                Op::Prefetch(p, n) => m.sys_prefetch(p, n),
                Op::Release(p, n) => m.sys_release(p, n),
                Op::PrefetchRelease(p, n, rp, rn) => m.sys_prefetch_release(p, n, rp, rn),
                Op::Tick(ns) => m.tick_user(ns),
            }
            // Frame accounting never exceeds physical memory.
            assert!(
                m.resident_pages() + m.inflight_pages() <= FRAMES,
                "case {case}: frames overflow: {} resident + {} inflight",
                m.resident_pages(),
                m.inflight_pages()
            );
            // The ledger always covers the clock exactly.
            assert_eq!(m.breakdown().total(), m.now(), "case {case}");
        }
        m.finish();
        assert_eq!(m.breakdown().total(), m.now(), "case {case}");
        // After finish, all stored data survives on "disk".
        for (&addr, &v) in &shadow {
            assert_eq!(m.peek_i64(addr), v, "case {case}: addr {addr}");
        }
        // Page-in classification is a partition.
        let s = m.stats();
        assert_eq!(
            s.original_faults(),
            s.prefetched_hits + s.prefetched_faults() + s.non_prefetched_faults,
            "case {case}"
        );
    }
}

/// The residency bit vector never lies in the dangerous direction:
/// a set bit for an unmapped page would make the filter drop a
/// needed prefetch forever. (A clear bit for a resident page only
/// costs a redundant system call.)
#[test]
fn bit_vector_is_safe() {
    let mut g = SimRng::new(0x05_0002);
    for case in 0..256 {
        let ops = random_ops(&mut g, 200);
        let mut m = machine();
        for op in &ops {
            match *op {
                Op::Load(a) => {
                    m.load_i64(a);
                }
                Op::Store(a, v) => m.store_i64(a, v),
                Op::Prefetch(p, n) => m.sys_prefetch(p, n),
                Op::Release(p, n) => m.sys_release(p, n),
                Op::PrefetchRelease(p, n, rp, rn) => m.sys_prefetch_release(p, n, rp, rn),
                Op::Tick(ns) => m.tick_user(ns),
            }
            // Touch a sentinel page twice: if its bit were wrongly set
            // while unmapped, this would still be correct (hints are
            // non-binding), but residency metadata must match up for
            // active pages we just touched.
            let probe = 4096 * (PAGES - 1);
            m.load_i64(probe);
            assert!(
                m.bits().test(PAGES - 1),
                "case {case}: just-touched page must be visible in the bit vector"
            );
        }
    }
}
