//! Property-based testing of the OS substrate.
//!
//! Drives the machine with random sequences of touches, hints, and
//! computation, checking after every step that (a) data is never
//! corrupted (against a shadow model), (b) frame accounting never
//! exceeds physical memory, (c) the time ledger always covers the
//! clock, and (d) the machine never wedges.

use std::collections::HashMap;

use oocp::os::{Machine, MachineParams};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Load(u64),
    Store(u64, i64),
    Prefetch(u64, u64),
    Release(u64, u64),
    PrefetchRelease(u64, u64, u64, u64),
    Tick(u64),
}

const PAGES: u64 = 96;
const FRAMES: u64 = 24;

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = 0u64..(PAGES * 4096 / 8);
    let page = 0u64..PAGES;
    let count = 1u64..8;
    prop_oneof![
        addr.clone().prop_map(|e| Op::Load(e * 8)),
        (addr, any::<i64>()).prop_map(|(e, v)| Op::Store(e * 8, v)),
        (page.clone(), count.clone()).prop_map(|(p, n)| Op::Prefetch(p, n)),
        (page.clone(), count.clone()).prop_map(|(p, n)| Op::Release(p, n)),
        (page.clone(), count.clone(), page, 1u64..4)
            .prop_map(|(p, n, rp, rn)| Op::PrefetchRelease(p, n, rp, rn)),
        (1u64..1_000_000u64).prop_map(Op::Tick),
    ]
}

fn machine() -> Machine {
    let mut p = MachineParams::small();
    p.resident_limit = FRAMES;
    p.demand_reserve = 2;
    p.low_water = 3;
    p.high_water = 6;
    Machine::new(p, PAGES * 4096)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn machine_survives_arbitrary_op_sequences(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut m = machine();
        let mut shadow: HashMap<u64, i64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Load(addr) => {
                    let got = m.load_i64(addr);
                    let want = shadow.get(&addr).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "load at {} corrupted", addr);
                }
                Op::Store(addr, v) => {
                    m.store_i64(addr, v);
                    shadow.insert(addr, v);
                }
                Op::Prefetch(p, n) => m.sys_prefetch(p, n),
                Op::Release(p, n) => m.sys_release(p, n),
                Op::PrefetchRelease(p, n, rp, rn) => m.sys_prefetch_release(p, n, rp, rn),
                Op::Tick(ns) => m.tick_user(ns),
            }
            // Frame accounting never exceeds physical memory.
            prop_assert!(
                m.resident_pages() + m.inflight_pages() <= FRAMES,
                "frames overflow: {} resident + {} inflight",
                m.resident_pages(),
                m.inflight_pages()
            );
            // The ledger always covers the clock exactly.
            prop_assert_eq!(m.breakdown().total(), m.now());
        }
        m.finish();
        prop_assert_eq!(m.breakdown().total(), m.now());
        // After finish, all stored data survives on "disk".
        for (&addr, &v) in &shadow {
            prop_assert_eq!(m.peek_i64(addr), v);
        }
        // Page-in classification is a partition.
        let s = m.stats();
        prop_assert_eq!(
            s.original_faults(),
            s.prefetched_hits + s.prefetched_faults() + s.non_prefetched_faults
        );
    }

    /// The residency bit vector never lies in the dangerous direction:
    /// a set bit for an unmapped page would make the filter drop a
    /// needed prefetch forever. (A clear bit for a resident page only
    /// costs a redundant system call.)
    #[test]
    fn bit_vector_is_safe(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut m = machine();
        for op in &ops {
            match *op {
                Op::Load(a) => {
                    m.load_i64(a);
                }
                Op::Store(a, v) => m.store_i64(a, v),
                Op::Prefetch(p, n) => m.sys_prefetch(p, n),
                Op::Release(p, n) => m.sys_release(p, n),
                Op::PrefetchRelease(p, n, rp, rn) => m.sys_prefetch_release(p, n, rp, rn),
                Op::Tick(ns) => m.tick_user(ns),
            }
            // Touch a sentinel page twice: if its bit were wrongly set
            // while unmapped, this would still be correct (hints are
            // non-binding), but residency metadata must match up for
            // active pages we just touched.
            let probe = 4096 * (PAGES - 1);
            m.load_i64(probe);
            prop_assert!(
                m.bits().test(PAGES - 1),
                "just-touched page must be visible in the bit vector"
            );
        }
    }
}
