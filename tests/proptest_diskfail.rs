//! The whole-disk-death oracle.
//!
//! The contract under test: on a rotating-parity array, losing an
//! entire disk at *any* point of a run may cost time — degraded
//! survivor fan-outs, rebuild contention, hedged tails — but never
//! correctness. Concretely, for every kernel x death-time x
//! mode/policy combination:
//!
//! 1. the run completes, verifies, and flushes clean,
//! 2. its final data is bit-identical to the fault-free reference,
//! 3. the degraded machinery actually engaged (the death was not
//!    silently ignored) and the rebuild verify sweep saw no latent
//!    parity corruption.
//!
//! Two deliberate edges ride along: a crash *during* the online
//! rebuild (recovery re-derives parity wholesale and the restart still
//! matches the never-crashed reference) and a second death while the
//! array is already holed (typed data loss, never silent corruption).
//!
//! Set `DISKFAIL_ORACLE_QUICK=1` to run a single-kernel smoke profile
//! (used by the CI disk-death gate's quick pass).

use oocp::os::{
    CrashPoint, CrashSpec, DiskDeath, FaultPlan, Machine, MachineParams, OsError, PolicyKind,
    Redundancy,
};
use oocp_bench::{
    run_workload, run_workload_crash_recover, run_workload_faulted, Config, Mode, RunResult,
};
use oocp_nas::{build, App};

fn quick() -> bool {
    std::env::var("DISKFAIL_ORACLE_QUICK").is_ok()
}

fn apps() -> Vec<App> {
    if quick() {
        vec![App::Embar]
    } else {
        vec![App::Embar, App::Buk, App::Cgm, App::Fft, App::Mgrid]
    }
}

/// The canonical parity platform of this suite: the default seven-disk
/// array, 1 MiB of memory, rotating parity on.
fn parity_config() -> Config {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg
        .machine
        .with_memory_bytes(1024 * 1024)
        .with_redundancy(Redundancy::Parity);
    cfg
}

/// Death points as fractions of the fault-free elapsed time, with the
/// disk each one takes out. The early point makes the rebuild overlap
/// most of the run (death *during* rebuild is the common case, not the
/// edge); the late one kills the array after the working set has
/// mostly gone through — possibly after the kernel's *last* access to
/// that disk, so it only pins bit-identity, not engagement.
fn death_points(total: u64) -> Vec<(u64, usize, bool)> {
    let fracs: &[(u64, u64, usize, bool)] = if quick() {
        &[(1, 20, 1, true), (1, 2, 2, true)]
    } else {
        &[(1, 20, 1, true), (1, 2, 2, true), (9, 10, 4, false)]
    };
    fracs
        .iter()
        .map(|&(num, den, disk, engage)| ((total * num / den).max(1), disk, engage))
        .collect()
}

fn check_survival(r: &RunResult, reference: &RunResult, expect_engaged: bool, tag: &str) {
    r.verified
        .as_ref()
        .unwrap_or_else(|e| panic!("{tag}: failed to verify: {e}"));
    assert!(r.flush.is_none(), "{tag}: dirty pages lost at flush");
    assert_eq!(
        r.checksum, reference.checksum,
        "{tag}: a disk death changed the results"
    );
    // The death must have been *survived*, not missed: some degraded
    // machinery engaged (which paths depend on mode and timing).
    if expect_engaged {
        let engaged = r.os.degraded_reads + r.os.hints_rerouted_degraded + r.os.rebuild_rows;
        assert!(engaged > 0, "{tag}: the death never engaged the array");
    }
    assert_eq!(
        r.os.rebuild_verify_mismatches, 0,
        "{tag}: rebuild verify saw parity corruption in a corruption-free run"
    );
}

/// THE oracle: every kernel, death point, and execution mode/policy
/// produces results bit-identical to the fault-free reference.
#[test]
fn disk_death_is_bit_identical_to_fault_free_reference() {
    let cfg = parity_config();
    // Demand-paged exercises degraded *demand* reads and hedging;
    // prefetching exercises hint rerouting; the adaptive-distance
    // policy stacks injected traffic on top of the compiler's.
    let cells: &[(Mode, PolicyKind)] = if quick() {
        &[
            (Mode::Original, PolicyKind::CompilerOnly),
            (Mode::Prefetch, PolicyKind::CompilerOnly),
        ]
    } else {
        &[
            (Mode::Original, PolicyKind::CompilerOnly),
            (Mode::Prefetch, PolicyKind::CompilerOnly),
            (Mode::Prefetch, PolicyKind::AdaptiveDistance),
        ]
    };
    for app in apps() {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let reference = run_workload(&w, &cfg, Mode::Prefetch);
        reference.verified.as_ref().expect("reference verifies");
        assert!(
            reference.flush.is_none(),
            "{app:?}: the fault-free parity reference must flush clean"
        );
        for &(mode, kind) in cells {
            let mut c = cfg;
            c.machine = c.machine.with_prefetch_policy(kind);
            for (i, &(at, disk, engage)) in death_points(reference.total()).iter().enumerate() {
                let plan =
                    FaultPlan::none(0xD15F_0000 + i as u64).with_disk_death(DiskDeath { disk, at });
                let r = run_workload_faulted(&w, &c, mode, &plan);
                let tag = format!(
                    "{app:?}/{}/{} death disk {disk} at {at} ns",
                    mode.label(),
                    kind.name()
                );
                check_survival(&r, &reference, engage, &tag);
            }
        }
    }
}

/// A power loss while the online rebuild is still scrubbing: recovery
/// re-derives parity wholesale from the durable image (a crash
/// mid-rebuild leaves no trustworthy incremental state), and the
/// application restart matches the never-crashed reference bit for
/// bit.
#[test]
fn crash_during_rebuild_recovers_and_reruns_clean() {
    let cfg = parity_config();
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    let reference = run_workload(&w, &cfg, Mode::Prefetch);
    reference.verified.as_ref().expect("reference verifies");
    // Death at a quarter of the run; the paced rebuild takes seconds
    // of simulated time, so a crash at half the run lands inside it.
    let death_at = (reference.total() / 4).max(1);
    let crash_at = reference.total() / 2;
    for torn in [false, true] {
        let plan = FaultPlan::none(0xD15F_C4A5)
            .with_disk_death(DiskDeath {
                disk: 1,
                at: death_at,
            })
            .with_crash(CrashSpec {
                point: CrashPoint::AtTime(crash_at),
                torn_writes: torn,
            });
        let run = run_workload_crash_recover(&w, &cfg, Mode::Prefetch, &plan);
        let tag = format!("EMBAR death@{death_at} crash@{crash_at} torn={torn}");
        assert!(run.recovery.crashed_at > 0, "{tag}: crash never tripped");
        assert_eq!(
            run.recovery.unrecoverable, 0,
            "{tag}: unrecoverable pages with the journal on: {:?}",
            run.recovery
        );
        run.rerun
            .verified
            .as_ref()
            .unwrap_or_else(|e| panic!("{tag}: recovered rerun failed to verify: {e}"));
        assert_eq!(
            run.rerun.checksum, reference.checksum,
            "{tag}: recovered rerun diverged from the uncrashed reference"
        );
        assert!(
            run.rerun.flush.is_none(),
            "{tag}: the rerun must flush clean"
        );
    }
}

/// A second death on a *different* disk while the array is still holed
/// exceeds what single parity can reconstruct: the machine surfaces
/// the typed loss instead of fabricating data.
#[test]
fn second_death_during_rebuild_is_typed_data_loss() {
    const PAGES: u64 = 96;
    let mut p = MachineParams::small();
    p.redundancy = Redundancy::Parity;
    let mut m = Machine::new(p, PAGES * p.page_bytes);
    m.set_fault_plan(
        &FaultPlan::none(0xD15F_0002)
            .with_disk_death(DiskDeath { disk: 1, at: 1 })
            .with_disk_death(DiskDeath { disk: 3, at: 2 }),
    );
    for page in 0..PAGES {
        m.poke_f64(page * p.page_bytes, page as f64 + 0.5);
    }
    let mut lost = None;
    for page in 0..PAGES {
        match m.try_touch(page * p.page_bytes, 8, false) {
            Ok(_) => {}
            Err(e) => {
                lost = Some(e);
                break;
            }
        }
    }
    match lost {
        Some(OsError::DiskLost { disk, .. }) => {
            assert!(
                disk == 1 || disk == 3,
                "loss attributed to a disk that never died"
            );
        }
        other => panic!("double death must surface DiskLost, got {other:?}"),
    }
    // Rows the first rebuild completed before the second death are on
    // the spare and still readable; nothing was silently corrupted.
    let (done, total) = m.rebuild_progress();
    assert!(done <= total, "watermark overran the array");
}
