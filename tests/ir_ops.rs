//! Interpreter operator-coverage tests: every IR operator and statement
//! form, exercised end to end with value checks.

use oocp::ir::{
    lin, param, run_program, var, ArrayBinding, ArrayData, ArrayRef, BinOp, CmpOp, Cond, CostModel,
    ElemType, Expr, MemVm, Program, Stmt, UnOp,
};

/// Build a program that stores `expr` into `out[slot]` and run it.
fn eval_expr(build: impl FnOnce(&mut Program) -> Expr) -> f64 {
    let mut p = Program::new("op");
    let out = p.array("out", ElemType::F64, vec![4]);
    let e = build(&mut p);
    // The builder may have pushed setup statements; append the store.
    p.body.push(Stmt::Store {
        dst: ArrayRef::affine(out, vec![lin(0)]),
        value: e,
    });
    let (binds, bytes) = ArrayBinding::sequential(&p, 4096);
    let mut vm = MemVm::new(bytes, 4096);
    run_program(&p, &binds, &[], CostModel::free(), &mut vm);
    vm.peek_f64(binds[out].base)
}

fn eval_int(build: impl FnOnce(&mut Program) -> Expr) -> i64 {
    let mut p = Program::new("op");
    let out = p.array("out", ElemType::I64, vec![4]);
    let e = build(&mut p);
    p.body.push(Stmt::Store {
        dst: ArrayRef::affine(out, vec![lin(0)]),
        value: e,
    });
    let (binds, bytes) = ArrayBinding::sequential(&p, 4096);
    let mut vm = MemVm::new(bytes, 4096);
    run_program(&p, &binds, &[], CostModel::free(), &mut vm);
    vm.peek_i64(binds[out].base)
}

#[test]
fn float_binops() {
    assert_eq!(
        eval_expr(|_| Expr::add(Expr::ConstF(2.0), Expr::ConstF(3.0))),
        5.0
    );
    assert_eq!(
        eval_expr(|_| Expr::sub(Expr::ConstF(2.0), Expr::ConstF(3.0))),
        -1.0
    );
    assert_eq!(
        eval_expr(|_| Expr::mul(Expr::ConstF(2.5), Expr::ConstF(4.0))),
        10.0
    );
    assert_eq!(
        eval_expr(|_| Expr::div(Expr::ConstF(1.0), Expr::ConstF(4.0))),
        0.25
    );
    assert_eq!(
        eval_expr(|_| Expr::bin(BinOp::Min, Expr::ConstF(2.0), Expr::ConstF(-3.0))),
        -3.0
    );
    assert_eq!(
        eval_expr(|_| Expr::bin(BinOp::Max, Expr::ConstF(2.0), Expr::ConstF(-3.0))),
        2.0
    );
    assert_eq!(
        eval_expr(|_| Expr::bin(BinOp::Rem, Expr::ConstF(7.5), Expr::ConstF(2.0))),
        1.5
    );
}

#[test]
fn int_binops() {
    let l = |n| Expr::Lin(lin(n));
    assert_eq!(eval_int(|_| Expr::bin(BinOp::Add, l(7), l(-3))), 4);
    assert_eq!(eval_int(|_| Expr::bin(BinOp::Sub, l(7), l(-3))), 10);
    assert_eq!(eval_int(|_| Expr::bin(BinOp::Mul, l(7), l(-3))), -21);
    assert_eq!(eval_int(|_| Expr::bin(BinOp::Div, l(7), l(2))), 3);
    assert_eq!(eval_int(|_| Expr::bin(BinOp::Rem, l(7), l(3))), 1);
    assert_eq!(eval_int(|_| Expr::bin(BinOp::Min, l(7), l(3))), 3);
    assert_eq!(eval_int(|_| Expr::bin(BinOp::Max, l(7), l(3))), 7);
}

#[test]
fn mixed_operands_promote_to_float() {
    assert_eq!(
        eval_expr(|_| Expr::add(Expr::Lin(lin(2)), Expr::ConstF(0.5))),
        2.5
    );
}

#[test]
fn unary_ops() {
    assert_eq!(eval_expr(|_| Expr::un(UnOp::Neg, Expr::ConstF(3.5))), -3.5);
    assert_eq!(eval_expr(|_| Expr::un(UnOp::Abs, Expr::ConstF(-3.5))), 3.5);
    assert_eq!(eval_expr(|_| Expr::un(UnOp::Sqrt, Expr::ConstF(16.0))), 4.0);
    let ln_e = eval_expr(|_| Expr::un(UnOp::Ln, Expr::ConstF(std::f64::consts::E)));
    assert!((ln_e - 1.0).abs() < 1e-12);
    assert_eq!(eval_int(|_| Expr::un(UnOp::Neg, Expr::Lin(lin(5)))), -5);
    assert_eq!(eval_int(|_| Expr::un(UnOp::Abs, Expr::Lin(lin(-5)))), 5);
}

#[test]
fn conversions_truncate_and_promote() {
    assert_eq!(eval_int(|_| Expr::ToI(Box::new(Expr::ConstF(3.9)))), 3);
    assert_eq!(eval_int(|_| Expr::ToI(Box::new(Expr::ConstF(-3.9)))), -3);
    assert_eq!(eval_expr(|_| Expr::ToF(Box::new(Expr::Lin(lin(9))))), 9.0);
}

#[test]
fn integer_scalars_roundtrip() {
    let got = eval_int(|p| {
        let s = p.fresh_iscalar();
        p.body.push(Stmt::LetI {
            dst: s,
            value: Expr::Lin(lin(41)),
        });
        p.body.push(Stmt::LetI {
            dst: s,
            value: Expr::bin(BinOp::Add, Expr::ScalarI(s), Expr::Lin(lin(1))),
        });
        Expr::ScalarI(s)
    });
    assert_eq!(got, 42);
}

#[test]
fn all_comparison_operators() {
    for (op, expect) in [
        (CmpOp::Lt, true),
        (CmpOp::Le, true),
        (CmpOp::Gt, false),
        (CmpOp::Ge, false),
        (CmpOp::Eq, false),
        (CmpOp::Ne, true),
    ] {
        let mut p = Program::new("cmp");
        let out = p.array("out", ElemType::I64, vec![1]);
        p.body = vec![Stmt::If {
            cond: Cond {
                lhs: Expr::Lin(lin(1)),
                op,
                rhs: Expr::Lin(lin(2)),
            },
            then_: vec![Stmt::Store {
                dst: ArrayRef::affine(out, vec![lin(0)]),
                value: Expr::Lin(lin(1)),
            }],
            else_: vec![Stmt::Store {
                dst: ArrayRef::affine(out, vec![lin(0)]),
                value: Expr::Lin(lin(-1)),
            }],
        }];
        let (binds, bytes) = ArrayBinding::sequential(&p, 4096);
        let mut vm = MemVm::new(bytes, 4096);
        run_program(&p, &binds, &[], CostModel::free(), &mut vm);
        assert_eq!(vm.peek_i64(binds[out].base) == 1, expect, "{op:?}");
    }
}

#[test]
fn float_comparison_in_conditionals() {
    let mut p = Program::new("fcmp");
    let out = p.array("out", ElemType::I64, vec![1]);
    p.body = vec![Stmt::If {
        cond: Cond {
            lhs: Expr::ConstF(1.5),
            op: CmpOp::Gt,
            rhs: Expr::Lin(lin(1)), // mixed: promotes to float
        },
        then_: vec![Stmt::Store {
            dst: ArrayRef::affine(out, vec![lin(0)]),
            value: Expr::Lin(lin(7)),
        }],
        else_: vec![],
    }];
    let (binds, bytes) = ArrayBinding::sequential(&p, 4096);
    let mut vm = MemVm::new(bytes, 4096);
    run_program(&p, &binds, &[], CostModel::free(), &mut vm);
    assert_eq!(vm.peek_i64(binds[out].base), 7);
}

#[test]
fn display_renders_every_statement_form() {
    let mut p = Program::new("display");
    let a = p.array("a", ElemType::F64, vec![10]);
    let b = p.array("b", ElemType::I64, vec![10]);
    let i = p.fresh_var();
    let fs = p.fresh_fscalar();
    let is = p.fresh_iscalar();
    let n = p.param("n");
    let aref = ArrayRef::affine(a, vec![var(i)]);
    let ind = ArrayRef {
        array: a,
        idx: vec![oocp::ir::Index::Ind {
            array: b,
            idx: vec![var(i)],
        }],
    };
    p.body = vec![
        Stmt::LetF {
            dst: fs,
            value: Expr::un(UnOp::Sqrt, Expr::ConstF(2.0)),
        },
        Stmt::LetI {
            dst: is,
            value: Expr::ToI(Box::new(Expr::ScalarF(fs))),
        },
        Stmt::for_min(
            i,
            lin(0),
            param(n),
            lin(10),
            1,
            vec![
                Stmt::Prefetch {
                    target: oocp::ir::HintTarget {
                        target: ind.clone(),
                    },
                    pages: 1,
                },
                Stmt::Release {
                    target: oocp::ir::HintTarget {
                        target: aref.clone(),
                    },
                    pages: 2,
                },
                Stmt::PrefetchRelease {
                    pf: oocp::ir::HintTarget {
                        target: aref.clone(),
                    },
                    pf_pages: 4,
                    rel: oocp::ir::HintTarget {
                        target: aref.clone(),
                    },
                    rel_pages: 4,
                },
                Stmt::If {
                    cond: Cond {
                        lhs: Expr::ScalarI(is),
                        op: CmpOp::Ne,
                        rhs: Expr::Lin(lin(0)),
                    },
                    then_: vec![Stmt::Store {
                        dst: aref.clone(),
                        value: Expr::bin(
                            BinOp::Min,
                            Expr::un(UnOp::Ln, Expr::ScalarF(fs)),
                            Expr::bin(BinOp::Max, Expr::ConstF(0.0), Expr::ConstF(1.0)),
                        ),
                    }],
                    else_: vec![Stmt::Store {
                        dst: aref.clone(),
                        value: Expr::bin(
                            BinOp::Rem,
                            Expr::ToF(Box::new(Expr::Lin(var(i)))),
                            Expr::ConstF(2.0),
                        ),
                    }],
                },
            ],
        ),
    ];
    let s = p.to_string();
    for needle in [
        "f0 = sqrt(2.0);",
        "n0 = (long)(f0);",
        "for (i0 = 0; i0 < min(P0, 10); i0++)",
        "prefetch(&a[b[i0]]);",
        "release_block(&a[i0], 2);",
        "prefetch_release_block(&a[i0], &a[i0], 4/*pf*/, 4/*rel*/);",
        "if (n0 != 0) {",
        "min(log(f0), max(0.0, 1.0))",
        "} else {",
        "(double)(i0) % 2.0",
    ] {
        assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
    }
}

#[test]
fn hi_min_bound_takes_effect_for_negative_steps() {
    // for (i = 9; i > max(-1, 4); i--) -> iterates 9..5
    let mut p = Program::new("negmin");
    let x = p.array("x", ElemType::I64, vec![10]);
    let i = p.fresh_var();
    p.body = vec![Stmt::for_min(
        i,
        lin(9),
        lin(-1),
        lin(4),
        -1,
        vec![Stmt::Store {
            dst: ArrayRef::affine(x, vec![var(i)]),
            value: Expr::Lin(lin(1)),
        }],
    )];
    let (binds, bytes) = ArrayBinding::sequential(&p, 4096);
    let mut vm = MemVm::new(bytes, 4096);
    let stats = run_program(&p, &binds, &[], CostModel::free(), &mut vm);
    assert_eq!(stats.iters, 5);
    assert_eq!(vm.peek_i64(binds[x].base + 5 * 8), 1);
    assert_eq!(vm.peek_i64(binds[x].base + 4 * 8), 0);
}
