//! Property-based tests for the storage substrates: the extent
//! allocator against a reference bitmap model, striping coverage for
//! arbitrary geometry, and disk service-time laws.

use std::collections::HashSet;

use oocp::disk::{DiskParams, ReqKind, Request};
use oocp::fs::{ExtentAllocator, FileSystem};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u64),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..64).prop_map(AllocOp::Alloc),
            (0usize..32).prop_map(AllocOp::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The allocator never double-allocates a block, never loses one,
    /// and its free count always matches a reference bitmap.
    #[test]
    fn extent_allocator_matches_bitmap_model(ops in alloc_ops()) {
        const CAP: u64 = 512;
        let mut a = ExtentAllocator::new(CAP);
        let mut held: Vec<oocp::fs::Extent> = Vec::new();
        let mut model: HashSet<u64> = HashSet::new(); // allocated blocks
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Some(e) = a.alloc(len) {
                        prop_assert_eq!(e.len, len);
                        for b in e.start..e.end() {
                            prop_assert!(model.insert(b), "double allocation of {}", b);
                        }
                        held.push(e);
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !held.is_empty() {
                        let e = held.remove(n % held.len());
                        for b in e.start..e.end() {
                            prop_assert!(model.remove(&b), "freeing unallocated {}", b);
                        }
                        a.free(e);
                    }
                }
            }
            prop_assert_eq!(a.free_blocks(), CAP - model.len() as u64);
        }
        // Free everything: the allocator must coalesce back to one run.
        for e in held.drain(..) {
            a.free(e);
        }
        prop_assert_eq!(a.free_blocks(), CAP);
        prop_assert_eq!(a.fragments(), 1);
        prop_assert!(a.alloc(CAP).is_some(), "full capacity reallocatable");
    }

    /// `place_run` covers every page exactly once, for any geometry.
    #[test]
    fn striping_covers_spans_exactly(
        ndisks in 1usize..12,
        pages in 1u64..500,
        start_frac in 0.0f64..1.0,
        count in 1u64..64,
    ) {
        let mut fs = FileSystem::new(ndisks, 4096);
        let f = fs.create_file(pages).unwrap();
        let start = ((pages - 1) as f64 * start_frac) as u64;
        let count = count.min(pages - start);
        let runs = fs.place_run(f, start, count).unwrap();
        let total: u64 = runs.iter().map(|r| r.nblocks).sum();
        prop_assert_eq!(total, count);
        prop_assert!(runs.len() <= ndisks.min(count as usize));
        // Each page's individual placement is inside exactly one run.
        for p in start..start + count {
            let (d, b) = fs.place(f, p).unwrap();
            let hits = runs
                .iter()
                .filter(|r| r.disk == d && (r.start_block..r.start_block + r.nblocks).contains(&b))
                .count();
            prop_assert_eq!(hits, 1, "page {} covered {} times", p, hits);
        }
    }

    /// Disk laws: completions are monotone in submission order, busy
    /// time equals the sum of services, and a request never completes
    /// before its own transfer time.
    #[test]
    fn disk_service_laws(
        reqs in prop::collection::vec((0u64..500_000, 1u64..8), 1..50),
        gap in 0u64..1_000_000,
    ) {
        let p = DiskParams::default();
        let mut d = oocp::disk::Disk::new(p);
        let mut last_done = 0u64;
        let mut now = 0u64;
        for (start, n) in reqs {
            let done = d.submit(
                now,
                Request {
                    kind: ReqKind::DemandRead,
                    start_block: start,
                    nblocks: n,
                },
            );
            prop_assert!(done >= last_done, "FIFO: completions are ordered");
            prop_assert!(
                done >= now + p.transfer_ns_per_block * n,
                "cannot beat the media rate"
            );
            prop_assert!(
                done <= now.max(last_done)
                    + p.seek_max_ns + p.rotation_ns + p.transfer_ns_per_block * n,
                "bounded by worst-case positioning"
            );
            last_done = done;
            now += gap;
        }
        prop_assert!(d.stats().busy_ns <= last_done);
    }
}
