//! Property-based tests for the storage substrates: the extent
//! allocator against a reference bitmap model, striping coverage for
//! arbitrary geometry, and disk service-time laws.
//!
//! Randomness comes from the simulator's deterministic `SimRng` so the
//! suite builds offline; every failure names a replayable case index.

use std::collections::HashSet;

use oocp::disk::{DiskParams, ReqKind, Request};
use oocp::fs::{ExtentAllocator, FileSystem};
use oocp::sim::SimRng;

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u64),
    FreeNth(usize),
}

fn alloc_ops(g: &mut SimRng) -> Vec<AllocOp> {
    let len = 1 + g.next_below(199) as usize;
    (0..len)
        .map(|_| {
            if g.next_below(2) == 0 {
                AllocOp::Alloc(1 + g.next_below(63))
            } else {
                AllocOp::FreeNth(g.next_below(32) as usize)
            }
        })
        .collect()
}

/// The allocator never double-allocates a block, never loses one,
/// and its free count always matches a reference bitmap.
#[test]
fn extent_allocator_matches_bitmap_model() {
    const CAP: u64 = 512;
    let mut g = SimRng::new(0xF5_0001);
    for case in 0..256 {
        let ops = alloc_ops(&mut g);
        let mut a = ExtentAllocator::new(CAP);
        let mut held: Vec<oocp::fs::Extent> = Vec::new();
        let mut model: HashSet<u64> = HashSet::new(); // allocated blocks
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Some(e) = a.alloc(len) {
                        assert_eq!(e.len, len, "case {case}");
                        for b in e.start..e.end() {
                            assert!(model.insert(b), "case {case}: double allocation of {b}");
                        }
                        held.push(e);
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !held.is_empty() {
                        let e = held.remove(n % held.len());
                        for b in e.start..e.end() {
                            assert!(model.remove(&b), "case {case}: freeing unallocated {b}");
                        }
                        a.free(e);
                    }
                }
            }
            assert_eq!(a.free_blocks(), CAP - model.len() as u64, "case {case}");
        }
        // Free everything: the allocator must coalesce back to one run.
        for e in held.drain(..) {
            a.free(e);
        }
        assert_eq!(a.free_blocks(), CAP, "case {case}");
        assert_eq!(a.fragments(), 1, "case {case}");
        assert!(
            a.alloc(CAP).is_some(),
            "case {case}: full capacity reallocatable"
        );
    }
}

/// `place_run` covers every page exactly once, for any geometry.
#[test]
fn striping_covers_spans_exactly() {
    let mut g = SimRng::new(0xF5_0002);
    for case in 0..256 {
        let ndisks = 1 + g.next_below(11) as usize;
        let pages = 1 + g.next_below(499);
        let start_frac = g.next_f64();
        let count = 1 + g.next_below(63);

        let mut fs = FileSystem::new(ndisks, 4096);
        let f = fs.create_file(pages).unwrap();
        let start = ((pages - 1) as f64 * start_frac) as u64;
        let count = count.min(pages - start);
        let runs = fs.place_run(f, start, count).unwrap();
        let total: u64 = runs.iter().map(|r| r.nblocks).sum();
        assert_eq!(total, count, "case {case}");
        assert!(runs.len() <= ndisks.min(count as usize), "case {case}");
        // Each page's individual placement is inside exactly one run.
        for p in start..start + count {
            let (d, b) = fs.place(f, p).unwrap();
            let hits = runs
                .iter()
                .filter(|r| r.disk == d && (r.start_block..r.start_block + r.nblocks).contains(&b))
                .count();
            assert_eq!(hits, 1, "case {case}: page {p} covered {hits} times");
        }
    }
}

/// Disk laws: completions are monotone in submission order, busy
/// time equals the sum of services, and a request never completes
/// before its own transfer time.
#[test]
fn disk_service_laws() {
    let mut g = SimRng::new(0xF5_0003);
    for case in 0..256 {
        let nreqs = 1 + g.next_below(49) as usize;
        let reqs: Vec<(u64, u64)> = (0..nreqs)
            .map(|_| (g.next_below(500_000), 1 + g.next_below(7)))
            .collect();
        let gap = g.next_below(1_000_000);

        let p = DiskParams::default();
        let mut d = oocp::disk::Disk::new(p);
        let mut last_done = 0u64;
        let mut now = 0u64;
        for (start, n) in reqs {
            let done = d.submit(now, Request::new(ReqKind::DemandRead, start, n));
            assert!(
                done >= last_done,
                "case {case}: FIFO: completions are ordered"
            );
            assert!(
                done >= now + p.transfer_ns_per_block * n,
                "case {case}: cannot beat the media rate"
            );
            assert!(
                done <= now.max(last_done)
                    + p.seek_max_ns
                    + p.rotation_ns
                    + p.transfer_ns_per_block * n,
                "case {case}: bounded by worst-case positioning"
            );
            last_done = done;
            now += gap;
        }
        assert!(d.stats().busy_ns <= last_done, "case {case}");
    }
}
