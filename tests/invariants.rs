//! Cross-crate accounting invariants.
//!
//! Every statistic the evaluation figures report is tied together by
//! conservation laws; these tests run real workloads through the full
//! stack and check the books balance.

use oocp::compiler::{compile_program, CompilerParams};
use oocp::ir::{run_program, ArrayBinding, CostModel};
use oocp::nas::{build, App};
use oocp::os::{Machine, MachineParams};
use oocp::rt::{FilterMode, Runtime};

struct Run {
    rt: Runtime,
}

fn run(app: App, prefetch: bool, filter: FilterMode) -> Run {
    let mut p = MachineParams::small();
    p.resident_limit = 512; // 2 MB
    let w = build(app, 4 << 20); // 4 MB data: 2x memory
    let prog = if prefetch {
        let cp = CompilerParams::new(p.page_bytes, 512 * 4096, 10_000_000);
        compile_program(&w.prog, &cp)
    } else {
        w.prog.clone()
    };
    let (binds, bytes) = ArrayBinding::sequential(&w.prog, p.page_bytes);
    let mut rt = Runtime::new(Machine::new(p, bytes), filter);
    w.init(&binds, &mut rt, 7);
    run_program(
        &prog,
        &binds,
        &w.param_values,
        CostModel::default(),
        &mut rt,
    );
    rt.machine_mut().finish();
    w.verify(&binds, &rt).expect("workload verifies");
    Run { rt }
}

#[test]
fn time_breakdown_partitions_makespan() {
    for app in [App::Buk, App::Mgrid] {
        for prefetch in [false, true] {
            let r = run(app, prefetch, FilterMode::Enabled);
            let m = r.rt.machine();
            assert_eq!(
                m.breakdown().total(),
                m.now(),
                "{:?} prefetch={prefetch}: ledger does not cover the clock",
                app
            );
        }
    }
}

#[test]
fn fault_classification_partitions_page_ins() {
    let r = run(App::Cgm, true, FilterMode::Enabled);
    let s = r.rt.machine().stats();
    assert_eq!(
        s.original_faults(),
        s.prefetched_hits
            + s.prefetched_faults_inflight
            + s.prefetched_faults_lost
            + s.non_prefetched_faults
    );
    assert!(s.original_faults() > 0);
}

#[test]
fn prefetch_page_outcomes_partition_requests() {
    for app in [App::Buk, App::Embar, App::Appsp] {
        let r = run(app, true, FilterMode::Enabled);
        let s = r.rt.machine().stats();
        assert_eq!(
            s.prefetch_pages_requested,
            s.prefetch_pages_issued
                + s.prefetch_pages_unnecessary
                + s.prefetch_pages_reclaimed
                + s.prefetch_pages_inflight
                + s.prefetch_pages_dropped,
            "{:?}: prefetch page outcomes must partition the requests",
            app
        );
    }
}

#[test]
fn rt_filter_accounts_for_every_page() {
    let r = run(App::Buk, true, FilterMode::Enabled);
    let rt_stats = r.rt.stats();
    let os_stats = r.rt.machine().stats();
    // Pages the runtime passed to the OS == pages the OS saw.
    assert_eq!(
        rt_stats.prefetch_pages - rt_stats.pages_filtered,
        os_stats.prefetch_pages_requested
    );
    // Fully-filtered ops plus issuing ops cover all prefetch ops.
    assert_eq!(
        rt_stats.ops_fully_filtered + rt_stats.prefetch_syscalls,
        rt_stats.prefetch_ops
    );
}

#[test]
fn disabled_filter_passes_everything() {
    let r = run(App::Buk, true, FilterMode::Disabled);
    let rt_stats = r.rt.stats();
    assert_eq!(rt_stats.pages_filtered, 0);
    assert_eq!(
        rt_stats.prefetch_pages,
        r.rt.machine().stats().prefetch_pages_requested
    );
}

#[test]
fn demand_reads_match_unmapped_faults() {
    for prefetch in [false, true] {
        let r = run(App::Applu, prefetch, FilterMode::Enabled);
        let s = r.rt.machine().stats();
        let d = r.rt.machine().disk_stats();
        // Every demand disk read comes from a fault on an unmapped page
        // (in-flight faults wait on the prefetch's read instead).
        assert_eq!(
            d.demand_reads,
            s.prefetched_faults_lost + s.non_prefetched_faults,
            "prefetch={prefetch}"
        );
        assert_eq!(d.demand_blocks, d.demand_reads, "demand reads are 1 page");
    }
}

#[test]
fn prefetch_reads_match_issued_pages() {
    let r = run(App::Embar, true, FilterMode::Enabled);
    let s = r.rt.machine().stats();
    let d = r.rt.machine().disk_stats();
    assert_eq!(d.prefetch_blocks, s.prefetch_pages_issued);
    // Striping packs several pages per request; requests never exceed
    // pages.
    assert!(d.prefetch_reads <= d.prefetch_blocks);
}

#[test]
fn writes_match_writebacks() {
    let r = run(App::Buk, true, FilterMode::Enabled);
    let s = r.rt.machine().stats();
    let d = r.rt.machine().disk_stats();
    assert_eq!(d.writes, s.writebacks);
}

#[test]
fn original_run_issues_no_hints() {
    let r = run(App::Mgrid, false, FilterMode::Enabled);
    let s = r.rt.machine().stats();
    assert_eq!(s.hint_syscalls, 0);
    assert_eq!(s.prefetch_pages_requested, 0);
    assert_eq!(r.rt.machine().disk_stats().prefetch_reads, 0);
    assert_eq!(r.rt.machine().breakdown().sys_prefetch, 0);
}

#[test]
fn frames_never_exceed_limit() {
    let r = run(App::Appbt, true, FilterMode::Enabled);
    let m = r.rt.machine();
    assert!(m.resident_pages() + m.inflight_pages() <= m.params().resident_limit);
}

#[test]
fn idle_time_shrinks_with_prefetching() {
    let o = run(App::Cgm, false, FilterMode::Enabled);
    let p = run(App::Cgm, true, FilterMode::Enabled);
    let oi = o.rt.machine().breakdown().idle;
    let pi = p.rt.machine().breakdown().idle;
    assert!(
        pi * 2 < oi,
        "prefetching should eliminate over half the stall: {pi} vs {oi}"
    );
}
