//! Property-based testing of the I/O scheduler subsystem.
//!
//! The contract under test: scheduling policy is *timing-only*. However
//! a disk reorders, merges, or delays its queued requests, the data a
//! program computes — and the classification of its page faults — must
//! be bit-identical to the FCFS baseline. Policies may only move time
//! around.
//!
//! Plans are generated with the simulator's deterministic `SimRng` so
//! the suite builds offline; every failure names a replayable case.

use std::collections::HashMap;

use oocp::os::{FaultPlan, Machine, MachineParams, SchedConfig, SchedPolicy};
use oocp::sim::time::MILLISECOND;
use oocp::sim::SimRng;
use oocp_bench::{run_workload, run_workload_faulted, Config, Mode, RunResult};
use oocp_nas::{build, App};

/// The scheduler configurations the properties sweep: every policy,
/// with and without coalescing, plus a bounded queue that exercises
/// backpressure (demand reads block, prefetch hints drop).
fn sweep() -> Vec<SchedConfig> {
    let base = SchedConfig::default();
    vec![
        base.with_policy(SchedPolicy::Sstf),
        base.with_policy(SchedPolicy::Scan),
        base.with_policy(SchedPolicy::DemandPriority),
        base.with_policy(SchedPolicy::Sstf).with_coalesce(true),
        base.with_policy(SchedPolicy::Scan).with_coalesce(true),
        base.with_policy(SchedPolicy::DemandPriority)
            .with_coalesce(true),
        base.with_policy(SchedPolicy::DemandPriority)
            .with_coalesce(true)
            .with_queue_depth(8),
    ]
}

/// The coverage partition of first touches: how many were covered by a
/// prefetch hint at all, and how many were not. The finer hit /
/// in-flight split inside the covered class is *itself a timing
/// measurement* (did the I/O complete before the touch?), so a policy
/// that reorders dispatch legitimately moves touches between those two
/// buckets — but it can never change whether a hint was issued.
fn coverage_partition(r: &RunResult) -> [u64; 2] {
    [
        r.os.prefetched_hits + r.os.prefetched_faults_inflight + r.os.prefetched_faults_lost,
        r.os.non_prefetched_faults,
    ]
}

/// For real kernels, every policy produces the same final data as the
/// FCFS baseline.
#[test]
fn every_policy_matches_fcfs_results_bit_for_bit() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    for app in [App::Embar, App::Buk] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let base = run_workload(&w, &cfg, Mode::Prefetch);
        base.verified.as_ref().expect("FCFS baseline verifies");
        for (case, sched) in sweep().into_iter().enumerate() {
            let mut c = cfg;
            c.machine = c.machine.with_sched(sched);
            let r = run_workload(&w, &c, Mode::Prefetch);
            r.verified
                .as_ref()
                .unwrap_or_else(|e| panic!("{app:?} case {case} {sched:?}: failed to verify: {e}"));
            assert_eq!(
                r.checksum, base.checksum,
                "{app:?} case {case}: scheduling changed the results; {sched:?}"
            );
        }
    }
}

/// Unbounded policies only reorder dispatch — they never change which
/// requests are submitted, so the hint-coverage partition of first
/// touches matches FCFS exactly. (A *bounded* queue genuinely perturbs
/// the request stream — rejected hints are dropped — so it is excluded
/// here and covered by the checksum property above.)
#[test]
fn unbounded_policies_preserve_the_fault_partition() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    for app in [App::Embar, App::Buk] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let base = run_workload(&w, &cfg, Mode::Prefetch);
        for (case, sched) in sweep()
            .into_iter()
            .filter(|s| s.queue_depth == usize::MAX)
            .enumerate()
        {
            let mut c = cfg;
            c.machine = c.machine.with_sched(sched);
            let r = run_workload(&w, &c, Mode::Prefetch);
            assert_eq!(
                coverage_partition(&r),
                coverage_partition(&base),
                "{app:?} case {case}: hint coverage diverged from FCFS; {sched:?}"
            );
        }
    }
}

/// Scheduling composes with fault injection: under any policy and a
/// random fault plan, the results still match the fault-free FCFS run.
#[test]
fn faulted_policies_still_compute_correct_results() {
    let mut g = SimRng::new(0x5C_ED01);
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    let w = build(App::Buk, cfg.bytes_for_ratio(2.0));
    let base = run_workload(&w, &cfg, Mode::Prefetch);
    for (case, sched) in sweep().into_iter().enumerate() {
        let plan = FaultPlan::none(g.next_u64())
            .with_errors(
                g.next_f64() * 0.05,
                g.next_f64() * 0.10,
                g.next_f64() * 0.05,
            )
            .with_stragglers(
                g.next_f64() * 0.10,
                2.0 + g.next_f64() * 8.0,
                g.next_below(20) * MILLISECOND,
            );
        let mut c = cfg;
        c.machine = c.machine.with_sched(sched);
        let r = run_workload_faulted(&w, &c, Mode::Prefetch, &plan);
        r.verified
            .as_ref()
            .unwrap_or_else(|e| panic!("case {case} {sched:?}: failed to verify: {e}"));
        assert_eq!(
            r.checksum, base.checksum,
            "case {case}: faults + scheduling changed the results; {sched:?}"
        );
    }
}

const PAGES: u64 = 96;
const FRAMES: u64 = 24;

/// Random programs under any policy: loads always see the last store,
/// simulated time is monotone, and the time ledger covers the clock —
/// including under a bounded queue, where backpressure blocks demand
/// traffic and silently drops hints.
#[test]
fn random_programs_survive_any_policy() {
    let mut g = SimRng::new(0x5C_ED02);
    for (case, sched) in sweep()
        .into_iter()
        .chain([SchedConfig::default()])
        .enumerate()
    {
        for round in 0..6 {
            let mut p = MachineParams::small();
            p.resident_limit = FRAMES;
            p.demand_reserve = 2;
            p.low_water = 3;
            p.high_water = 6;
            p.sched = sched;
            let mut m = Machine::new(p, PAGES * 4096);
            let mut shadow: HashMap<u64, i64> = HashMap::new();
            let mut last = m.now();
            let len = 50 + g.next_below(200);
            for step in 0..len {
                match g.next_below(5) {
                    0 => {
                        let addr = g.next_below(PAGES * 4096 / 8) * 8;
                        let got = m.load_i64(addr);
                        let want = shadow.get(&addr).copied().unwrap_or(0);
                        assert_eq!(
                            got, want,
                            "case {case} round {round} step {step}: load corrupted ({sched:?})"
                        );
                    }
                    1 => {
                        let addr = g.next_below(PAGES * 4096 / 8) * 8;
                        let v = g.next_u64() as i64;
                        m.store_i64(addr, v);
                        shadow.insert(addr, v);
                    }
                    2 => m.sys_prefetch(g.next_below(PAGES), 1 + g.next_below(7)),
                    3 => m.sys_release(g.next_below(PAGES), 1 + g.next_below(7)),
                    _ => m.tick_user(1 + g.next_below(999_999)),
                }
                assert!(
                    m.now() >= last,
                    "case {case} round {round} step {step}: time ran backwards ({sched:?})"
                );
                last = m.now();
                assert_eq!(
                    m.breakdown().total(),
                    m.now(),
                    "case {case} round {round} step {step}: ledger lost time ({sched:?})"
                );
            }
            m.finish();
            assert_eq!(
                m.breakdown().total(),
                m.now(),
                "case {case} round {round}: final ledger ({sched:?})"
            );
            for (&addr, &v) in &shadow {
                assert_eq!(
                    m.peek_i64(addr),
                    v,
                    "case {case} round {round}: addr {addr} corrupted ({sched:?})"
                );
            }
        }
    }
}
