//! Property-based testing of the compiler pass.
//!
//! Generates random affine/indirect loop-nest programs from a seed and
//! checks that compilation (under randomized compiler parameters)
//! preserves semantics byte-for-byte, both on flat memory and on the
//! paged machine. This is the strongest statement of the non-binding
//! prefetch property: *no* program in the IR's space may be miscompiled.
//!
//! Cases are driven by the simulator's own deterministic `SimRng`
//! rather than an external property-testing crate, so the suite builds
//! offline and every failure reports a replayable seed.

use oocp::compiler::{compile, CompilerParams, ReleaseMode};
use oocp::ir::{
    lin, run_program, var, ArrayBinding, ArrayData, ArrayRef, CostModel, ElemType, Expr, Index,
    MemVm, Program, Stmt,
};
use oocp::os::{Machine, MachineParams};
use oocp::rt::{FilterMode, Runtime};
use oocp::sim::SimRng;

/// Small deterministic generator for program synthesis.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// A generated program plus everything needed to run it.
struct GenProgram {
    prog: Program,
    param_values: Vec<i64>,
}

/// Build a random but *valid* program: loop trips fit array dims, and
/// indirection arrays are initialized in-range by `init_data`.
fn random_program(seed: u64) -> GenProgram {
    let mut g = Gen(seed | 1);
    let mut p = Program::new("fuzz");

    // Loops: depth 1..=3 with trips 4..=48.
    let depth = g.range(1, 3) as usize;
    let trips: Vec<i64> = (0..depth).map(|_| g.range(4, 48)).collect();
    let max_trip = *trips.iter().max().unwrap();

    // Arrays: 1..=3 float arrays sized to accommodate any subscript of
    // the form i + c (c in 0..=4) times a possible stride.
    let narr = g.range(1, 3) as usize;
    let arrays: Vec<usize> = (0..narr)
        .map(|k| {
            if g.chance(40) && depth >= 2 {
                // 2-D array [trip0-compatible][inner]
                let d0 = max_trip + 8;
                let d1 = g.range(max_trip + 8, max_trip + 64);
                p.array(&format!("a{k}"), ElemType::F64, vec![d0, d1])
            } else {
                let d = g.range(max_trip * 4 + 16, max_trip * 8 + 64);
                p.array(&format!("a{k}"), ElemType::F64, vec![d])
            }
        })
        .collect();

    // Optional index array for one level of indirection: values are
    // initialized in-range for the smallest float array.
    let idx_arr = g
        .chance(50)
        .then(|| p.array("idx", ElemType::I64, vec![max_trip + 8]));

    // One loop bound may be symbolic.
    let sym = g.chance(30).then(|| p.param("n"));

    let vars: Vec<usize> = (0..depth).map(|_| p.fresh_var()).collect();

    // A random in-bounds reference in the current loop context.
    let min_float_dim0 = arrays.iter().map(|&a| p.arrays[a].dims[0]).min().unwrap();
    let make_ref = |g: &mut Gen, p: &Program| -> ArrayRef {
        let a = arrays[g.below(arrays.len() as u64) as usize];
        let rank = p.arrays[a].dims.len();
        let mut idx = Vec::with_capacity(rank);
        for d in 0..rank {
            let dim = p.arrays[a].dims[d];
            // Indirection only in the last dim of 1-D arrays, sometimes.
            if rank == 1 {
                if let Some(ia) = idx_arr {
                    if g.chance(25) {
                        let v = vars[g.below(depth as u64) as usize];
                        idx.push(Index::Ind {
                            array: ia,
                            idx: vec![var(v)],
                        });
                        continue;
                    }
                }
            }
            match g.below(3) {
                0 => idx.push(Index::Lin(lin(g.range(0, dim - 1)))),
                1 => {
                    let v = vars[g.below(depth as u64) as usize];
                    let c = g.range(0, (dim - max_trip).max(0));
                    idx.push(Index::Lin(var(v).offset(c)));
                }
                _ => {
                    let v = vars[g.below(depth as u64) as usize];
                    let scale = g.range(1, ((dim - 1) / max_trip.max(1)).clamp(1, 4));
                    idx.push(Index::Lin(var(v).scale(scale)));
                }
            }
        }
        ArrayRef { array: a, idx }
    };

    // Body: 1..=3 stores of small expressions.
    let nstmts = g.range(1, 3);
    let mut body: Vec<Stmt> = Vec::new();
    for _ in 0..nstmts {
        let dst = make_ref(&mut g, &p);
        let mut value = Expr::LoadF(make_ref(&mut g, &p));
        for _ in 0..g.range(0, 2) {
            let rhs = if g.chance(50) {
                Expr::LoadF(make_ref(&mut g, &p))
            } else {
                Expr::ConstF(g.range(-4, 4) as f64 * 0.5)
            };
            value = match g.below(3) {
                0 => Expr::add(value, rhs),
                1 => Expr::sub(value, rhs),
                _ => Expr::mul(value, rhs),
            };
        }
        body.push(Stmt::Store { dst, value });
    }

    // Wrap in loops, innermost first; one may run backward, and inner
    // loops are sometimes triangular (lower bound = the enclosing
    // loop's variable), which exercises the compiler's inner-bound
    // substitution chain for hint targets.
    for (d, &v) in vars.iter().enumerate().rev() {
        let trip = trips[d];
        let backward = g.chance(20);
        let triangular = d > 0 && !backward && g.chance(30);
        let hi = match (d, sym) {
            (0, Some(param_id)) if !backward => oocp::ir::param(param_id),
            _ => lin(trip.max(if triangular {
                *trips[..d].iter().max().unwrap()
            } else {
                0
            })),
        };
        body = vec![if backward {
            Stmt::for_(v, lin(trip - 1), lin(-1), -1, body)
        } else if triangular {
            // lo = outer loop's variable; hi covers the largest outer
            // value so the range is never empty-by-construction but may
            // shrink with the outer index.
            Stmt::for_(v, var(vars[d - 1]), hi, 1, body)
        } else {
            Stmt::for_(v, lin(0), hi, 1, body)
        }];
    }
    p.body = body;

    let param_values = sym.map(|_| vec![trips[0]]).unwrap_or_default();
    let _ = min_float_dim0;
    GenProgram {
        prog: p,
        param_values,
    }
}

/// Deterministically fill all arrays; index arrays get in-range values.
fn init_data(gp: &GenProgram, binds: &[ArrayBinding], data: &mut dyn ArrayData, seed: u64) {
    let mut g = Gen(seed.wrapping_mul(0x9E37_79B9) | 1);
    // The indirection target space: smallest float-array dim 0.
    let min_dim = gp
        .prog
        .arrays
        .iter()
        .filter(|a| a.elem == ElemType::F64)
        .map(|a| a.dims[0])
        .min()
        .unwrap_or(1);
    for (ai, a) in gp.prog.arrays.iter().enumerate() {
        for e in 0..a.len() as u64 {
            let addr = binds[ai].base + e * 8;
            match a.elem {
                ElemType::F64 => data.poke_f64(addr, (g.below(1000) as f64 - 500.0) * 0.25),
                ElemType::I64 => data.poke_i64(addr, g.below(min_dim as u64) as i64),
            }
        }
    }
}

fn random_params(seed: u64) -> CompilerParams {
    let mut g = Gen(seed.wrapping_add(17) | 1);
    let mode = match g.below(3) {
        0 => ReleaseMode::Off,
        1 => ReleaseMode::Conservative,
        _ => ReleaseMode::Aggressive,
    };
    CompilerParams::new(
        4096,
        (g.range(16, 256) * 4096) as u64,
        g.range(100_000, 20_000_000) as u64,
    )
    .with_block_pages(g.range(1, 8) as u64)
    .with_release_mode(mode)
    .with_two_version(g.chance(30))
}

const CASES: u64 = 192;

/// Compilation preserves semantics on flat memory for random programs
/// and random compiler parameters.
#[test]
fn compiled_program_is_equivalent_on_flat_memory() {
    let mut seeds = SimRng::new(0xC0FF_EE00_0001);
    for case in 0..CASES {
        let seed = seeds.next_u64();
        let gp = random_program(seed);
        assert!(
            gp.prog.validate().is_empty(),
            "case {case} seed {seed}: generator made invalid IR"
        );
        let params = random_params(seed);
        let (xformed, _) = compile(&gp.prog, &params);
        assert!(
            xformed.validate().is_empty(),
            "case {case} seed {seed}: compiler made invalid IR"
        );

        let (binds, bytes) = ArrayBinding::sequential(&gp.prog, 4096);
        let mut vm_a = MemVm::new(bytes, 4096);
        let mut vm_b = MemVm::new(bytes, 4096);
        init_data(&gp, &binds, &mut vm_a, seed);
        init_data(&gp, &binds, &mut vm_b, seed);
        run_program(
            &gp.prog,
            &binds,
            &gp.param_values,
            CostModel::free(),
            &mut vm_a,
        );
        run_program(
            &xformed,
            &binds,
            &gp.param_values,
            CostModel::free(),
            &mut vm_b,
        );
        assert_eq!(
            vm_a.bytes(),
            vm_b.bytes(),
            "case {case} seed {seed} diverged"
        );
    }
}

/// Ditto on the paged machine with eviction and hint traffic.
#[test]
fn compiled_program_is_equivalent_on_paged_machine() {
    let mut seeds = SimRng::new(0xC0FF_EE00_0002);
    for case in 0..CASES {
        let seed = seeds.next_u64();
        let gp = random_program(seed);
        let params = random_params(seed.rotate_left(13));
        let (xformed, _) = compile(&gp.prog, &params);

        let (binds, bytes) = ArrayBinding::sequential(&gp.prog, 4096);
        let mut vm_a = MemVm::new(bytes, 4096);
        init_data(&gp, &binds, &mut vm_a, seed);
        run_program(
            &gp.prog,
            &binds,
            &gp.param_values,
            CostModel::free(),
            &mut vm_a,
        );

        let mut mp = MachineParams::small();
        mp.resident_limit = 64;
        mp.demand_reserve = 4;
        mp.low_water = 8;
        mp.high_water = 16;
        let mut rt = Runtime::new(Machine::new(mp, bytes), FilterMode::Enabled);
        init_data(&gp, &binds, &mut rt, seed);
        run_program(
            &xformed,
            &binds,
            &gp.param_values,
            CostModel::default(),
            &mut rt,
        );
        rt.machine_mut().finish();

        // Compare every float array byte-for-byte via probes over all
        // elements (cheap at these sizes).
        for (ai, a) in gp.prog.arrays.iter().enumerate() {
            for e in 0..a.len() as u64 {
                let addr = binds[ai].base + e * 8;
                assert_eq!(
                    vm_a.peek_i64(addr),
                    rt.peek_i64(addr),
                    "case {case} seed {seed}: array {} elem {e}",
                    a.name
                );
            }
        }
        // Accounting invariants hold for arbitrary programs.
        let m = rt.machine();
        assert_eq!(m.breakdown().total(), m.now(), "case {case} seed {seed}");
        let s = m.stats();
        assert_eq!(
            s.prefetch_pages_requested,
            s.prefetch_pages_issued
                + s.prefetch_pages_unnecessary
                + s.prefetch_pages_reclaimed
                + s.prefetch_pages_inflight
                + s.prefetch_pages_dropped,
            "case {case} seed {seed}"
        );
    }
}

/// Regression seeds found by the property tests.
#[test]
fn regression_seeds() {
    for seed in [9126067274222796157u64, 18161295402928145092] {
        let gp = random_program(seed);
        let params = random_params(seed);
        let (xformed, _) = compile(&gp.prog, &params);
        let (binds, bytes) = ArrayBinding::sequential(&gp.prog, 4096);
        let mut vm_a = MemVm::new(bytes, 4096);
        let mut vm_b = MemVm::new(bytes, 4096);
        init_data(&gp, &binds, &mut vm_a, seed);
        init_data(&gp, &binds, &mut vm_b, seed);
        run_program(
            &gp.prog,
            &binds,
            &gp.param_values,
            CostModel::free(),
            &mut vm_a,
        );
        run_program(
            &xformed,
            &binds,
            &gp.param_values,
            CostModel::free(),
            &mut vm_b,
        );
        if vm_a.bytes() != vm_b.bytes() {
            eprintln!(
                "SEED {seed} FAILS\n=== original ===\n{}\n=== transformed ===\n{}",
                gp.prog, xformed
            );
            panic!("seed {seed} diverged");
        }
    }
}
