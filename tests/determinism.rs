//! Determinism: given the same seed and configuration, every run of the
//! full stack is bit-identical — the property the whole experiment
//! methodology rests on.

use oocp_bench::{run_workload, Config, Mode};
use oocp_nas::{build, App};

fn fingerprint(cfg: &Config, app: App, mode: Mode) -> (u64, u64, u64, u64, u64) {
    let w = build(app, cfg.bytes_for_ratio(2.0));
    let r = run_workload(&w, cfg, mode);
    (
        r.total(),
        r.os.hard_faults,
        r.os.prefetch_pages_issued,
        r.disk.requests(),
        r.rt.prefetch_ops,
    )
}

#[test]
fn same_seed_same_everything() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(2 * 1024 * 1024);
    for app in [App::Buk, App::Fft] {
        for mode in [Mode::Original, Mode::Prefetch] {
            let a = fingerprint(&cfg, app, mode);
            let b = fingerprint(&cfg, app, mode);
            assert_eq!(a, b, "{app:?} {mode:?} not deterministic");
        }
    }
}

#[test]
fn different_seed_different_data_same_shape() {
    let mut cfg1 = Config::default_platform();
    cfg1.machine = cfg1.machine.with_memory_bytes(2 * 1024 * 1024);
    let mut cfg2 = cfg1;
    cfg2.seed = cfg1.seed + 1;
    let a = fingerprint(&cfg1, App::Buk, Mode::Prefetch);
    let b = fingerprint(&cfg2, App::Buk, Mode::Prefetch);
    // Different keys: timing differs slightly...
    assert_ne!(a.0, b.0, "different seeds should not collide exactly");
    // ...but the shape is stable: within 10% on every counter.
    let close = |x: u64, y: u64| {
        let (x, y) = (x as f64, y as f64);
        (x - y).abs() <= 0.1 * x.max(y)
    };
    assert!(close(a.0, b.0), "total time: {} vs {}", a.0, b.0);
    assert!(close(a.1, b.1), "faults: {} vs {}", a.1, b.1);
    assert!(close(a.3, b.3), "disk requests: {} vs {}", a.3, b.3);
}

#[test]
fn fault_wait_statistics_are_populated() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(2 * 1024 * 1024);
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    let o = run_workload(&w, &cfg, Mode::Original);
    let p = run_workload(&w, &cfg, Mode::Prefetch);
    assert_eq!(o.os.fault_wait.count(), o.os.hard_faults);
    // Original waits the full disk latency; prefetched residuals are
    // far smaller on average.
    assert!(o.os.fault_wait.mean() > 1e6, "original mean wait >= 1ms");
    // Per-fault waits need not shrink (the sequential extent layout
    // already makes each original read cheap); the *total* stall —
    // count x mean — must collapse.
    let total = |s: &oocp::os::OsStats| s.fault_wait.count() as f64 * s.fault_wait.mean();
    assert!(
        total(&p.os) < 0.2 * total(&o.os),
        "prefetching must collapse total fault wait: {} vs {}",
        total(&p.os),
        total(&o.os)
    );
}
