//! Property-based testing of the prefetch-policy subsystem.
//!
//! The contract under test is the policy crate's central one: policies
//! are **timing-only**. A policy may move pages through memory earlier
//! or later — injecting prefetches and releases the compiler never
//! asked for — but it can never change what a program computes. The
//! oracle is the FNV-1a checksum of the final address space: every
//! kernel x policy x fault-plan combination must produce data
//! bit-identical to the `CompilerOnly` run, and the prefetch ledger's
//! partition invariant must keep holding with injected traffic in
//! flight.
//!
//! The deliberately rule-breaking `BrokenPolicy` proves the oracle has
//! teeth: its run must be *caught* (diverging checksum or failed
//! verification), not silently absorbed.

use oocp::os::FaultPlan;
use oocp::sim::SimRng;
use oocp_bench::{run_workload, run_workload_faulted, Config, Mode, RunResult};
use oocp_nas::{build, App, Workload};
use oocp_policy::PolicyKind;

fn platform() -> Config {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    cfg.metrics = true;
    cfg
}

/// The mode each policy naturally runs under: reactive policies
/// compete with the compiler from an unhinted `Original` build, the
/// distance controller rides on the compiler's hints.
fn natural_mode(kind: PolicyKind) -> Mode {
    match kind {
        PolicyKind::CompilerOnly | PolicyKind::AdaptiveDistance => Mode::Prefetch,
        _ => Mode::Original,
    }
}

/// Check the invariants every policy run must uphold against the
/// compiler-only checksum.
fn check_run(r: &RunResult, baseline: u64, what: &str) {
    r.verified
        .as_ref()
        .unwrap_or_else(|e| panic!("{what}: failed to verify: {e}"));
    assert_eq!(
        r.checksum, baseline,
        "{what}: policy changed the computed data"
    );
    let o = r.obs.as_ref().expect("metrics were enabled");
    assert_eq!(
        o.ledger.sum() + o.ledger_open,
        o.ledger_entries,
        "{what}: ledger outcomes no longer partition the issue decisions"
    );
    // The whylate causal attribution must partition the very same
    // outcomes: every late, dropped, and wasted prefetch carries
    // exactly one dominant cause, with nothing double-counted.
    assert!(
        o.whylate.partitions(&o.ledger),
        "{what}: whylate causes do not partition the ledger \
         (late {} vs {}, dropped {} vs {}, wasted {} vs {})",
        o.whylate.late_total(),
        o.ledger.late_inflight,
        o.whylate.drop_total(),
        o.ledger.dropped_no_memory
            + o.ledger.dropped_queue_full
            + o.ledger.dropped_io_error
            + o.ledger.dropped_quota
            + o.ledger.dropped_pressure,
        o.whylate.wasted_total(),
        o.ledger.evicted_unused + o.ledger.unused_at_end,
    );
}

fn policy_run(w: &Workload, cfg: &Config, kind: PolicyKind, mode: Mode) -> RunResult {
    let mut c = *cfg;
    c.machine = c.machine.with_prefetch_policy(kind);
    run_workload(w, &c, mode)
}

/// Fault-free: every shippable policy, in both its natural mode and
/// the opposite one, computes data bit-identical to compiler-only.
#[test]
fn policies_are_timing_only() {
    let cfg = platform();
    for app in [App::Embar, App::Buk] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let base = policy_run(&w, &cfg, PolicyKind::CompilerOnly, Mode::Prefetch);
        base.verified.as_ref().expect("compiler-only run verifies");
        // The unhinted run computes the same data, so one checksum
        // serves as the oracle for every mode below.
        let orig = policy_run(&w, &cfg, PolicyKind::CompilerOnly, Mode::Original);
        assert_eq!(orig.checksum, base.checksum, "{app:?}: modes disagree");
        for kind in PolicyKind::MATRIX {
            for mode in [Mode::Original, Mode::Prefetch] {
                let r = policy_run(&w, &cfg, kind, mode);
                check_run(
                    &r,
                    base.checksum,
                    &format!("{app:?}/{}/{}", kind.name(), mode.label()),
                );
            }
        }
    }
}

/// Seeded fault plans (transient I/O errors, stragglers, brownouts,
/// stale residency bits) never let a policy's injected traffic change
/// the results either — faults may only cost time, policies included.
#[test]
fn policies_survive_fault_plans_bit_identically() {
    let mut g = SimRng::new(0x50_0001);
    let cfg = platform();
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    let base = policy_run(&w, &cfg, PolicyKind::CompilerOnly, Mode::Prefetch);
    base.verified.as_ref().expect("fault-free run verifies");
    for kind in PolicyKind::MATRIX {
        for case in 0..2 {
            // Plain striping: a sampled whole-disk death would be
            // (correctly) fatal here, so survivable plans strip them.
            let plan = FaultPlan::sample(&mut g).without_disk_deaths();
            let mut c = cfg;
            c.machine = c.machine.with_prefetch_policy(kind);
            let r = run_workload_faulted(&w, &c, natural_mode(kind), &plan);
            check_run(
                &r,
                base.checksum,
                &format!("EMBAR/{}/case {case} plan {plan:?}", kind.name()),
            );
        }
    }
}

/// The negative control: a policy that corrupts data must be caught by
/// the oracle (checksum divergence or failed verification) — proving
/// the two tests above would notice a real contract violation.
#[test]
fn broken_policy_is_caught() {
    let cfg = platform();
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    let base = policy_run(&w, &cfg, PolicyKind::CompilerOnly, Mode::Prefetch);
    base.verified.as_ref().expect("compiler-only run verifies");
    let r = policy_run(&w, &cfg, PolicyKind::Broken, Mode::Original);
    assert!(
        r.checksum != base.checksum || r.verified.is_err(),
        "the broken policy went unnoticed — the timing-only oracle has no teeth"
    );
}
