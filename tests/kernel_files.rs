//! The sample kernels in `kernels/` must parse, compile, and be
//! semantically preserved by the prefetching pass.

use oocp::compiler::{compile, CompilerParams};
use oocp::ir::{parse_program, run_program, ArrayBinding, CostModel, MemVm};

fn check(file: &str, params: &[i64]) {
    let src = std::fs::read_to_string(format!("kernels/{file}")).expect("kernel file");
    let prog = parse_program(&src).unwrap_or_else(|e| panic!("{file}: {e}"));
    assert!(prog.validate().is_empty(), "{file}: invalid IR");
    let cparams = CompilerParams::new(4096, 4 << 20, 10_000_000);
    let (xformed, report) = compile(&prog, &cparams);
    assert!(
        report.prefetched_groups() > 0,
        "{file}: nothing was prefetched"
    );
    let (binds, bytes) = ArrayBinding::sequential(&prog, 4096);
    let mut vm_a = MemVm::new(bytes, 4096);
    let mut vm_b = MemVm::new(bytes, 4096);
    run_program(&prog, &binds, params, CostModel::free(), &mut vm_a);
    run_program(&xformed, &binds, params, CostModel::free(), &mut vm_b);
    assert_eq!(vm_a.bytes(), vm_b.bytes(), "{file}: semantics changed");
    assert!(vm_b.prefetches > 0, "{file}: no dynamic prefetches");
}

#[test]
fn stencil_kernel() {
    check("stencil.ook", &[]);
}

#[test]
fn histogram_kernel() {
    check("histogram.ook", &[500_000]);
}

#[test]
fn sumreduce_kernel() {
    check("sumreduce.ook", &[]);
}

#[test]
fn transpose_kernel() {
    check("transpose.ook", &[]);
}

#[test]
fn matmul_kernel() {
    check("matmul.ook", &[]);
}
