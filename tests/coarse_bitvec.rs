//! The shared bit vector is a *single page* of bits; when the address
//! space is larger than one page of bits can cover, each bit spans
//! several pages — "the granularity of the bit vector is determined by
//! the run-time layer at program start-up". These tests run the full
//! stack at coarse granularity and check the system stays correct (the
//! filter may become conservative, never wrong).

use oocp::compiler::{compile_program, CompilerParams};
use oocp::ir::{
    lin, run_program, var, ArrayBinding, ArrayData, ArrayRef, CostModel, ElemType, Expr, MemVm,
    Program, Stmt,
};
use oocp::os::{Machine, MachineParams};
use oocp::rt::{FilterMode, Runtime};

/// A machine whose bit vector must be coarse: 512-byte pages give
/// 512 * 8 = 4096 bits, and the address space holds more pages than
/// that.
fn coarse_machine(space_pages: u64) -> Machine {
    let mut p = MachineParams::small();
    p.page_bytes = 512;
    p.disk.block_bytes = 512;
    p.disk.transfer_ns_per_block /= 8;
    p.resident_limit = 2048;
    p.demand_reserve = 8;
    p.low_water = 32;
    p.high_water = 128;
    Machine::new(p, space_pages * 512)
}

#[test]
fn granularity_exceeds_one_when_space_is_large() {
    let m = coarse_machine(10_000);
    assert!(
        m.bits().granularity() >= 2,
        "10000 pages need >1 page per bit in 4096 bits"
    );
    assert_eq!(m.bits().pages_covered(), 10_000);
}

#[test]
fn full_stack_is_correct_at_coarse_granularity() {
    // A streaming kernel over an address space needing granularity >= 4.
    let n = 1_200_000i64; // 9.6 MB of doubles over 512-byte pages
    let mut prog = Program::new("coarse");
    let x = prog.array("x", ElemType::F64, vec![n]);
    let i = prog.fresh_var();
    prog.body = vec![Stmt::for_(
        i,
        lin(0),
        lin(n),
        1,
        vec![Stmt::Store {
            dst: ArrayRef::affine(x, vec![var(i)]),
            value: Expr::add(
                Expr::LoadF(ArrayRef::affine(x, vec![var(i)])),
                Expr::ConstF(1.0),
            ),
        }],
    )];
    let cparams = CompilerParams::new(512, 1024 * 512, 2_000_000);
    let xformed = compile_program(&prog, &cparams);

    // Reference on flat memory.
    let (binds, bytes) = ArrayBinding::sequential(&prog, 512);
    let mut vm = MemVm::new(bytes, 512);
    for e in 0..n as u64 {
        vm.poke_f64(binds[x].base + e * 8, e as f64);
    }
    run_program(&prog, &binds, &[], CostModel::free(), &mut vm);

    // Transformed on the coarse-bit machine.
    let mut rt = Runtime::new(coarse_machine(bytes / 512), FilterMode::Enabled);
    assert!(rt.machine().bits().granularity() >= 4);
    for e in 0..n as u64 {
        rt.poke_f64(binds[x].base + e * 8, e as f64);
    }
    run_program(&xformed, &binds, &[], CostModel::default(), &mut rt);
    rt.machine_mut().finish();

    for e in [0u64, 1, (n / 2) as u64, n as u64 - 1] {
        assert_eq!(
            rt.peek_f64(binds[x].base + e * 8),
            vm.peek_f64(binds[x].base + e * 8),
            "element {e}"
        );
    }
    // The filter still eliminated most of the stall.
    let m = rt.machine();
    assert!(
        m.stats().coverage() > 0.5,
        "coarse bits degrade but must not destroy coverage: {:.2}",
        m.stats().coverage()
    );
    // Accounting invariants hold at coarse granularity too.
    assert_eq!(m.breakdown().total(), m.now());
    let s = m.stats();
    assert_eq!(
        s.prefetch_pages_requested,
        s.prefetch_pages_issued
            + s.prefetch_pages_unnecessary
            + s.prefetch_pages_reclaimed
            + s.prefetch_pages_inflight
            + s.prefetch_pages_dropped
    );
}

#[test]
fn coarse_bits_cause_extra_syscalls_not_missed_data() {
    // Compare filter effectiveness at fine vs coarse granularity on the
    // same access pattern: coarse may pass more hints to the OS (they
    // show up as unnecessary-issued), but data correctness and coverage
    // never depend on granularity.
    let mut m = coarse_machine(10_000);
    let g = m.bits().granularity();
    assert!(g >= 2);
    // Fault in one page; its groupmates' bits are now set too.
    m.touch(0, 8, false);
    assert!(m.bits().test(0));
    // The bit over-claims for page 1 (same group): the filter would
    // skip prefetching it, and the later touch hard-faults — correct,
    // just slower.
    let faults_before = m.stats().hard_faults;
    m.touch(512, 8, false);
    assert_eq!(m.stats().hard_faults, faults_before + 1);
    assert_eq!(m.load_f64(512), 0.0, "data is still correct");
}
