//! Property-based testing of the multi-tenant machine.
//!
//! The oracle is solo execution: a tenant co-scheduled with up to
//! seven neighbours — through disk faults, stragglers, and a neighbour
//! crashing mid-run — must produce final data bit-identical to the
//! same program, spec, and seed running alone. Trials are generated
//! with the simulator's deterministic `SimRng`, so the suite builds
//! offline and every failure names a replayable trial seed.
//!
//! A separate property pins down graceful degradation: a tenant
//! starved down to a handful of frames and a single prefetch slot must
//! still terminate with correct data — quotas may only cost time.

use std::collections::HashMap;

use oocp::rt::{TenantHub, TenantProgram};
use oocp::sim::SimRng;
use oocp_bench::tenants::{
    co_run, fairness_failures, platform, seed_of, tenant_spec, tenant_workload, CoOptions,
};

/// Random 2..=8-way co-scheduling, faults and crashes included: every
/// surviving tenant's final checksum must match its solo oracle.
#[test]
fn co_scheduled_checksums_match_solo() {
    let cfg = platform();
    let mut solos = HashMap::new();
    let mut g = SimRng::new(0x7e_0001);
    for trial in 0..4u32 {
        let n = 2 + g.next_below(7) as usize;
        let opts = CoOptions {
            // Half the trials run the chaos plan (injected disk errors
            // and stragglers); faults may only cost time, never data.
            faults: g.next_below(2) == 0,
            // Half the trials crash one tenant mid-run; the victim's
            // data is off the hook, everyone else's is not.
            kill: if g.next_below(2) == 0 {
                Some((g.next_below(n as u64) as usize, 500 + g.next_below(2_000)))
            } else {
                None
            },
            metrics: false,
        };
        let cell = co_run(&cfg, n, &opts, &mut solos).expect("canonical platform is valid");
        // Checksum-only oracle: factor u64::MAX disarms the p95 gate
        // (fairness is the bench binary's gate; correctness is ours).
        let fails = fairness_failures(&cell, u64::MAX, 0);
        assert!(
            fails.is_empty(),
            "trial {trial} (n={n}, opts={opts:?}): {fails:?}"
        );
        if let Some((victim, _)) = opts.kill {
            assert!(
                cell.hub.tenants[victim].killed,
                "trial {trial}: kill plan for tenant {victim} never fired"
            );
        }
    }
}

/// A quota-starved tenant (minimum legal memory reservation, a single
/// prefetch slot) sharing the machine with an unconstrained neighbour
/// still terminates, with data bit-identical to solo.
#[test]
fn quota_starved_tenant_terminates_correctly() {
    let cfg = platform();
    let (w, prog) = tenant_workload(&cfg);
    let starved = tenant_spec(&cfg, 0)
        .with_memory_frames(8)
        .with_prefetch_slots(1);
    let programs = vec![
        TenantProgram::new(prog.clone(), w.param_values.clone()).with_spec(starved),
        TenantProgram::new(prog.clone(), w.param_values.clone()).with_spec(tenant_spec(&cfg, 1)),
    ];
    let mut hub = TenantHub::new(cfg.machine, programs)
        .expect("canonical platform is valid")
        .with_cost(cfg.cost);
    for t in 0..2 {
        let binds = hub.binds(t).to_vec();
        w.init(&binds, &mut hub.data(), seed_of(&cfg, t));
    }
    let r = hub.run();
    let solo = oocp_bench::tenants::solo_run(&cfg, seed_of(&cfg, 0)).unwrap();
    assert_eq!(
        r.tenants[0].checksum, solo.checksum,
        "starved tenant corrupted its data"
    );
    assert!(
        r.tenants[0].finished_at <= r.elapsed_ns,
        "starved tenant never finished"
    );
    // Starvation must actually have bitten: the 8-frame cap forces
    // quota evictions (or quota hint drops) a solo/unlimited run never
    // sees — otherwise this test is vacuous.
    let os = &r.tenants[0].os;
    assert!(
        os.quota_evictions > 0 || os.hints_dropped_quota > 0,
        "8-frame cap never fired: evictions {} / quota drops {}",
        os.quota_evictions,
        os.hints_dropped_quota
    );
}
