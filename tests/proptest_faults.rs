//! Property-based testing of the fault-injection stack.
//!
//! The contract under test is the paper's central one: prefetch and
//! release are *hints*, so no injected fault — transient I/O errors,
//! stragglers, brownouts, stale residency bits — may ever change what a
//! program computes. Faults may only cost time.
//!
//! Plans are generated with the simulator's deterministic `SimRng` so
//! the suite builds offline; every failure names a replayable seed.

use std::collections::HashMap;

use oocp::os::{FaultPlan, Machine, MachineParams};
use oocp::sim::SimRng;
use oocp_bench::{run_workload, run_workload_faulted, Config, Mode};
use oocp_nas::{build, App};

/// The shared bounded-plan generator (also used by the baseline
/// round-trip test, so both suites cover the same fault space). The
/// machines here run the plain `--redundancy none` layout, where losing
/// a whole disk is *designed* to be fatal — so the survivable plans
/// strip sampled deaths; `tests/proptest_diskfail.rs` owns the
/// parity-mode death coverage.
fn random_plan(g: &mut SimRng) -> FaultPlan {
    FaultPlan::sample(g).without_disk_deaths()
}

/// Any seeded fault plan leaves every kernel's final data bit-identical
/// to the fault-free run, and the run still verifies.
#[test]
fn faulted_kernels_match_fault_free_results() {
    let mut g = SimRng::new(0xFA_0001);
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    for app in [App::Embar, App::Buk] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let base = run_workload(&w, &cfg, Mode::Prefetch);
        base.verified.as_ref().expect("fault-free run verifies");
        for case in 0..4 {
            let plan = random_plan(&mut g);
            let r = run_workload_faulted(&w, &cfg, Mode::Prefetch, &plan);
            r.verified.as_ref().unwrap_or_else(|e| {
                panic!("{app:?} case {case} plan {plan:?}: failed to verify: {e}")
            });
            assert_eq!(
                r.checksum, base.checksum,
                "{app:?} case {case}: faults changed the results; plan {plan:?}"
            );
        }
    }
}

/// [`FaultPlan::sample`] only ever produces well-formed plans: every
/// per-class error probability stays in [0, 1], straggler parameters
/// are physical (multiplier >= 1, probability in [0, 1]), brownout
/// windows are ordered, no crash is scheduled (crash coverage has its
/// own dedicated oracle suite), at most one disk death lands on a disk
/// a minimum redundant array can lose, and `is_active()` agrees with
/// its definition — true exactly when some disk-level fault class is
/// on. This test samples *raw* plans (deaths included) on purpose.
#[test]
fn sampled_plans_are_always_well_formed() {
    use oocp::disk::ReqKind;
    let mut g = SimRng::new(0xFA_0003);
    for case in 0..512 {
        let plan = FaultPlan::sample(&mut g);
        for kind in [ReqKind::DemandRead, ReqKind::PrefetchRead, ReqKind::Write] {
            let p = plan.error_prob(kind);
            assert!(
                (0.0..=1.0).contains(&p),
                "case {case}: error_prob({kind:?}) = {p} out of range"
            );
        }
        assert!(
            (0.0..=1.0).contains(&plan.straggler_prob),
            "case {case}: straggler_prob out of range"
        );
        assert!(
            plan.straggler_mult >= 1.0,
            "case {case}: straggler_mult {} would shrink service times",
            plan.straggler_mult
        );
        assert!(
            (0.0..=1.0).contains(&plan.bitvec_stale_prob),
            "case {case}: bitvec_stale_prob out of range"
        );
        for b in &plan.brownouts {
            assert!(b.from <= b.until, "case {case}: inverted brownout window");
        }
        assert!(
            plan.crash.is_none(),
            "case {case}: sample() must not schedule crashes"
        );
        assert!(
            plan.disk_deaths.len() <= 1,
            "case {case}: more deaths than single parity can tolerate"
        );
        for d in &plan.disk_deaths {
            assert!(
                d.disk < 2,
                "case {case}: death on disk {} misses a two-disk array",
                d.disk
            );
        }
        assert!(
            plan.clone().without_disk_deaths().disk_deaths.is_empty(),
            "case {case}: without_disk_deaths() left a death behind"
        );
        let expect_active = plan.error_prob(ReqKind::DemandRead) > 0.0
            || plan.error_prob(ReqKind::PrefetchRead) > 0.0
            || plan.error_prob(ReqKind::Write) > 0.0
            || plan.straggler_prob > 0.0
            || !plan.brownouts.is_empty()
            || plan.crash.is_some()
            || !plan.disk_deaths.is_empty();
        assert_eq!(
            plan.is_active(),
            expect_active,
            "case {case}: is_active() disagrees with its definition"
        );
    }
}

const PAGES: u64 = 96;
const FRAMES: u64 = 24;

/// Faulted machines never let simulated time run backwards and keep
/// the time ledger covering the clock exactly; data survives.
#[test]
fn simulated_time_is_monotone_under_faults() {
    let mut g = SimRng::new(0xFA_0002);
    for case in 0..64 {
        let plan = random_plan(&mut g);
        let mut p = MachineParams::small();
        p.resident_limit = FRAMES;
        p.demand_reserve = 2;
        p.low_water = 3;
        p.high_water = 6;
        let mut m = Machine::new(p, PAGES * 4096);
        m.set_fault_plan(&plan);
        let mut shadow: HashMap<u64, i64> = HashMap::new();
        let mut last = m.now();
        let len = 50 + g.next_below(200);
        for step in 0..len {
            match g.next_below(5) {
                0 => {
                    let addr = g.next_below(PAGES * 4096 / 8) * 8;
                    let got = m.load_i64(addr);
                    let want = shadow.get(&addr).copied().unwrap_or(0);
                    assert_eq!(got, want, "case {case} step {step}: load corrupted");
                }
                1 => {
                    let addr = g.next_below(PAGES * 4096 / 8) * 8;
                    let v = g.next_u64() as i64;
                    m.store_i64(addr, v);
                    shadow.insert(addr, v);
                }
                2 => m.sys_prefetch(g.next_below(PAGES), 1 + g.next_below(7)),
                3 => m.sys_release(g.next_below(PAGES), 1 + g.next_below(7)),
                _ => m.tick_user(1 + g.next_below(999_999)),
            }
            assert!(
                m.now() >= last,
                "case {case} step {step}: time ran backwards ({} < {last})",
                m.now()
            );
            last = m.now();
            assert_eq!(
                m.breakdown().total(),
                m.now(),
                "case {case} step {step}: ledger lost time"
            );
        }
        m.finish();
        assert!(m.now() >= last, "case {case}: finish ran time backwards");
        assert_eq!(m.breakdown().total(), m.now(), "case {case}: final ledger");
        for (&addr, &v) in &shadow {
            assert_eq!(m.peek_i64(addr), v, "case {case}: addr {addr} corrupted");
        }
    }
}
