//! The crash-recovery oracle.
//!
//! The contract under test: a simulated power loss at *any* point of a
//! run — including one that tears the writes it catches mid-air — may
//! cost durability of the pages the crash cut off, but never
//! correctness of what recovery hands back. Concretely, for every
//! kernel x crash point x torn-write combination:
//!
//! 1. the crashed run completes without panicking (zombie mode),
//! 2. `recover()` completes without panicking and, with the journal
//!    enabled, reports zero unrecoverable pages,
//! 3. an application restart on the recovered machine produces results
//!    bit-identical to a run that never crashed (the write-ahead
//!    journal gives per-page atomicity, not cross-page snapshot
//!    consistency — so restart semantics are the honest oracle).
//!
//! Set `CRASH_ORACLE_QUICK=1` to run a single-kernel smoke profile
//! (used by the CI crash gate's quick pass).

use oocp::os::{CrashPoint, CrashSpec, FaultPlan};
use oocp_bench::{run_workload, run_workload_crash_recover, Config, Mode};
use oocp_nas::{build, App};

fn apps() -> Vec<App> {
    if std::env::var("CRASH_ORACLE_QUICK").is_ok() {
        vec![App::Embar]
    } else {
        vec![App::Embar, App::Buk, App::Cgm, App::Fft, App::Mgrid]
    }
}

#[test]
fn crash_recover_restart_matches_uncrashed_reference() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    for app in apps() {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let reference = run_workload(&w, &cfg, Mode::Prefetch);
        reference.verified.as_ref().expect("reference verifies");
        assert!(
            reference.flush.is_none(),
            "{app:?}: the fault-free reference must flush clean"
        );
        let total_ops =
            reference.disk.demand_reads + reference.disk.prefetch_reads + reference.disk.writes;
        assert!(total_ops > 10, "{app:?}: too little I/O to crash into");

        let mut points: Vec<CrashPoint> = [0.5, 0.7, 0.9]
            .iter()
            .map(|f| CrashPoint::AtOp(((total_ops as f64 * f) as u64).max(1)))
            .collect();
        points.push(CrashPoint::AtTime(reference.total() / 2));

        for (i, &point) in points.iter().enumerate() {
            for torn in [false, true] {
                let plan = FaultPlan::none(0xC4A5_0000 + i as u64).with_crash(CrashSpec {
                    point,
                    torn_writes: torn,
                });
                let run = run_workload_crash_recover(&w, &cfg, Mode::Prefetch, &plan);
                let tag = format!("{app:?} point {point:?} torn={torn}");

                // The crash engaged: the machine died mid-run.
                assert!(run.recovery.crashed_at > 0, "{tag}: crash never tripped");
                // The crash costs durability, never in-memory
                // computation: the zombie leg still verifies.
                run.crashed
                    .verified
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{tag}: zombie leg corrupted data: {e}"));
                // With the journal, every page is recoverable, torn
                // writes included.
                assert_eq!(
                    run.recovery.unrecoverable, 0,
                    "{tag}: unrecoverable pages with the journal on: {:?}",
                    run.recovery
                );
                if torn {
                    // Torn pages may or may not occur (the crash may
                    // catch no write mid-air), but discards + replays
                    // must account for whatever the report claims.
                    assert_eq!(
                        run.recovery.unrecoverable_pages.len(),
                        0,
                        "{tag}: unrecoverable page list disagrees with count"
                    );
                }
                // Recovery work is visible to the perf harness.
                assert_eq!(
                    run.rerun.os.recovery_ns, run.recovery.recovery_ns,
                    "{tag}: recovery time not carried into the rerun's counters"
                );
                assert!(run.recovery.recovery_ns > 0, "{tag}: recovery took no time");

                // THE oracle: restart on the recovered machine equals
                // the never-crashed run, bit for bit.
                run.rerun
                    .verified
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{tag}: recovered rerun failed to verify: {e}"));
                assert_eq!(
                    run.rerun.checksum, reference.checksum,
                    "{tag}: recovered rerun diverged from the uncrashed reference"
                );
                assert!(
                    run.rerun.flush.is_none(),
                    "{tag}: the rerun must flush clean"
                );
            }
        }
    }
}

/// Crashing at the very first submission recovers to the pristine
/// post-init state and still replays to the reference result.
#[test]
fn crash_at_first_op_recovers_to_baseline_and_reruns_clean() {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    let reference = run_workload(&w, &cfg, Mode::Prefetch);
    let plan = FaultPlan::none(0x00C4_A5FF).with_crash(CrashSpec {
        point: CrashPoint::AtOp(0),
        torn_writes: true,
    });
    let run = run_workload_crash_recover(&w, &cfg, Mode::Prefetch, &plan);
    assert_eq!(run.recovery.unrecoverable, 0);
    assert_eq!(run.recovery.pages_replayed, 0, "nothing was ever written");
    assert_eq!(run.rerun.checksum, reference.checksum);
}
