//! Semantic-equivalence integration tests.
//!
//! The non-binding-prefetch property (paper Figure 1): the compiler's
//! output must compute exactly what the input computes — on a flat
//! memory, and on the full simulated paged machine with eviction,
//! prefetch, and release traffic. These tests run every NAS kernel
//! through the compiler and compare the final bytes of every array
//! across (a) original on flat memory, (b) transformed on flat memory,
//! and (c) transformed on the paged machine under memory pressure.

use oocp::compiler::{compile_program, CompilerParams, ReleaseMode};
use oocp::ir::{run_program, ArrayBinding, ArrayData, CostModel, MemVm};
use oocp::nas::{build, App, Workload};
use oocp::os::{Machine, MachineParams};
use oocp::rt::{FilterMode, Runtime};

/// A tight machine: ~1 MB of memory so kernels are heavily out-of-core.
fn tight_machine(space_bytes: u64) -> Machine {
    let mut p = MachineParams::small();
    p.resident_limit = 256;
    p.demand_reserve = 8;
    p.low_water = 16;
    p.high_water = 48;
    Machine::new(p, space_bytes)
}

fn compiler_params() -> CompilerParams {
    CompilerParams::new(4096, 256 * 4096, 5_000_000)
}

/// Run `w` three ways and compare final array bytes.
fn assert_workload_equivalent(w: &Workload, cparams: &CompilerParams) {
    let (binds, bytes) = ArrayBinding::sequential(&w.prog, 4096);
    let xformed = compile_program(&w.prog, cparams);
    let (pf, rel, pr) = xformed.count_hints();
    assert!(
        pf + pr > 0,
        "{}: compiler inserted no prefetches",
        w.app.name()
    );
    let _ = rel;

    // (a) Original on flat memory.
    let mut vm_a = MemVm::new(bytes, 4096);
    w.init(&binds, &mut vm_a, 99);
    run_program(
        &w.prog,
        &binds,
        &w.param_values,
        CostModel::free(),
        &mut vm_a,
    );
    w.verify(&binds, &vm_a)
        .unwrap_or_else(|e| panic!("{} original: {e}", w.app.name()));

    // (b) Transformed on flat memory.
    let mut vm_b = MemVm::new(bytes, 4096);
    w.init(&binds, &mut vm_b, 99);
    run_program(
        &xformed,
        &binds,
        &w.param_values,
        CostModel::free(),
        &mut vm_b,
    );
    assert_eq!(
        vm_a.bytes(),
        vm_b.bytes(),
        "{}: transformed program diverged on flat memory",
        w.app.name()
    );

    // (c) Transformed on the paged machine under pressure.
    let mut rt = Runtime::new(tight_machine(bytes), FilterMode::Enabled);
    w.init(&binds, &mut rt, 99);
    run_program(
        &xformed,
        &binds,
        &w.param_values,
        CostModel::free(),
        &mut rt,
    );
    rt.machine_mut().finish();
    w.verify(&binds, &rt)
        .unwrap_or_else(|e| panic!("{} on machine: {e}", w.app.name()));
    for (ai, a) in w.prog.arrays.iter().enumerate() {
        for probe in [0u64, (a.len() as u64 - 1) / 2, a.len() as u64 - 1] {
            let addr = binds[ai].base + probe * 8;
            assert_eq!(
                vm_a.peek_i64(addr),
                rt.peek_i64(addr),
                "{}: array {} diverged at element {probe} on the machine",
                w.app.name(),
                a.name
            );
        }
    }
}

const SMALL: u64 = 2 << 20; // 2 MB data sets keep the suite fast

#[test]
fn buk_equivalent() {
    assert_workload_equivalent(&build(App::Buk, SMALL), &compiler_params());
}

#[test]
fn cgm_equivalent() {
    assert_workload_equivalent(&build(App::Cgm, SMALL), &compiler_params());
}

#[test]
fn embar_equivalent() {
    assert_workload_equivalent(&build(App::Embar, SMALL), &compiler_params());
}

#[test]
fn fft_equivalent() {
    assert_workload_equivalent(&build(App::Fft, SMALL), &compiler_params());
}

#[test]
fn mgrid_equivalent() {
    assert_workload_equivalent(&build(App::Mgrid, SMALL), &compiler_params());
}

#[test]
fn applu_equivalent() {
    assert_workload_equivalent(&build(App::Applu, SMALL), &compiler_params());
}

#[test]
fn appsp_equivalent() {
    assert_workload_equivalent(&build(App::Appsp, SMALL), &compiler_params());
}

#[test]
fn appbt_equivalent() {
    assert_workload_equivalent(&build(App::Appbt, SMALL), &compiler_params());
}

#[test]
fn suite_equivalent_with_aggressive_releases() {
    // Aggressive release mode must never change results either.
    let params = compiler_params().with_release_mode(ReleaseMode::Aggressive);
    for app in [App::Buk, App::Mgrid, App::Appsp] {
        assert_workload_equivalent(&build(app, SMALL), &params);
    }
}

#[test]
fn suite_equivalent_with_two_version_loops() {
    let params = compiler_params().with_two_version(true);
    for app in [App::Appbt, App::Cgm] {
        assert_workload_equivalent(&build(app, SMALL), &params);
    }
}

#[test]
fn suite_equivalent_with_odd_block_sizes() {
    for block in [1, 3, 16] {
        let params = compiler_params().with_block_pages(block);
        assert_workload_equivalent(&build(App::Embar, SMALL), &params);
    }
}
