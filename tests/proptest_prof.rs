//! Property-based testing of the host-time profiler.
//!
//! The contract under test: **attachment is host-time-only**. The
//! profiler's probes read the host clock and nothing else, so a
//! profiled run must leave every piece of sim-visible state —
//! checksum, elapsed simulated time, the Figure-5 attribution, the OS
//! counters, the interpreter's dynamic counts, and the prefetch
//! ledger's partition — bit-identical to a detached run of the same
//! cell, across kernels, prefetch policies, and seeded fault plans.
//! (The detached configuration is stronger still: `NoProf` probes
//! monomorphize to nothing, so there is no "probe off" branch to even
//! mispredict. That zero-cost side is re-gated by perfgate.)
//!
//! On top of bit-identity, the captured site tree must satisfy its own
//! structural invariants, and the capture-merge operation must behave
//! like the algebra `proptest_obs` proves for the metrics registry:
//! commutative and associative up to child order (witnessed by the
//! canonical collapsed form) with self-time conserved.
//!
//! Sequences are generated with the simulator's deterministic `SimRng`
//! so the suite builds offline; every failure names a replayable seed.

use oocp::obs::prof::{ProfNode, Profile};
use oocp::os::FaultPlan;
use oocp::sim::SimRng;
use oocp_bench::{
    run_workload, run_workload_faulted, run_workload_profiled, run_workload_profiled_faulted,
    Config, Mode, RunResult,
};
use oocp_nas::{build, App};
use oocp_policy::PolicyKind;

fn platform() -> Config {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    cfg.metrics = true;
    cfg
}

/// Every sim-visible observable of `b` must equal `a`'s. `checksum`
/// first — a divergence there is a correctness bug, not a perf one.
fn assert_sim_identical(a: &RunResult, b: &RunResult, what: &str) {
    b.verified
        .as_ref()
        .unwrap_or_else(|e| panic!("{what}: profiled run failed to verify: {e}"));
    assert_eq!(b.checksum, a.checksum, "{what}: profiler changed the data");
    assert_eq!(b.total(), a.total(), "{what}: elapsed sim time moved");
    assert_eq!(b.attr, a.attr, "{what}: Figure-5 attribution moved");
    assert_eq!(b.os, a.os, "{what}: OS counters moved");
    assert_eq!(b.exec, a.exec, "{what}: interpreter counts moved");
    let (oa, ob) = (
        a.obs.as_ref().expect("metrics enabled"),
        b.obs.as_ref().expect("metrics enabled"),
    );
    assert_eq!(ob.ledger, oa.ledger, "{what}: ledger partition moved");
    assert_eq!(
        ob.ledger_entries, oa.ledger_entries,
        "{what}: ledger entries moved"
    );
    assert_eq!(
        ob.fault_wait, oa.fault_wait,
        "{what}: fault-wait histogram moved"
    );
    assert_eq!(
        ob.lead_time, oa.lead_time,
        "{what}: lead-time histogram moved"
    );
    assert_eq!(
        ob.arrival_to_use, oa.arrival_to_use,
        "{what}: arrival-to-use histogram moved"
    );
    assert_eq!(ob.whylate, oa.whylate, "{what}: whylate causes moved");
}

/// Structural invariants of a captured site tree.
fn check_profile(p: &Profile, kernel: &str, what: &str) {
    assert_eq!(p.root.name, "all", "{what}: root must be the `all` frame");
    assert_eq!(
        p.root.total_ns,
        p.root.children.iter().map(|c| c.total_ns).sum::<u64>(),
        "{what}: root total must be the sum of its children (self 0)"
    );
    assert!(
        p.root.children.iter().any(|c| c.name == kernel),
        "{what}: kernel frame `{kernel}` missing from the capture"
    );
    fn walk(n: &ProfNode, what: &str) {
        // The synthetic root is never "entered"; every real site is.
        assert!(
            n.count > 0 || n.name == "all",
            "{what}: site {} recorded with zero entries",
            n.name
        );
        let kids: u64 = n.children.iter().map(|c| c.total_ns).sum();
        assert!(
            n.self_ns() <= n.total_ns,
            "{what}: site {} self time exceeds its total",
            n.name
        );
        // Saturation in self_ns() forgives per-child clock rounding,
        // but a child sum wildly past the parent is a bookkeeping bug.
        assert!(
            kids <= n.total_ns || kids - n.total_ns < 1_000_000,
            "{what}: site {} children sum {} far past parent total {}",
            n.name,
            kids,
            n.total_ns
        );
        for c in &n.children {
            walk(c, what);
        }
    }
    walk(&p.root, what);
    // The collapsed export of a real capture always passes its own
    // structural validator (the CI smoke gate relies on this).
    oocp::obs::check_collapsed(&p.collapsed())
        .unwrap_or_else(|e| panic!("{what}: collapsed export invalid: {e}"));
}

/// Fault-free: across kernels x modes x policies, a profiled run is
/// sim-identical to the detached run it shadows.
#[test]
fn profiled_runs_are_sim_identical_fault_free() {
    let cfg = platform();
    for app in [App::Embar, App::Buk] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        for mode in [Mode::Original, Mode::Prefetch] {
            let detached = run_workload(&w, &cfg, mode);
            let (profiled, prof) = run_workload_profiled(&w, &cfg, mode);
            let what = format!("{app:?}/{}", mode.label());
            assert_sim_identical(&detached, &profiled, &what);
            check_profile(&prof, w.prog.name.as_str(), &what);
        }
    }
    // Policies inject their own prefetch/release traffic through the
    // same machine paths the profiler brackets; attachment must stay
    // invisible with a policy driving.
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    for kind in [
        PolicyKind::Readahead,
        PolicyKind::AdaptiveDistance,
        PolicyKind::HistoryReplay,
    ] {
        let mode = match kind {
            PolicyKind::Readahead => Mode::Original,
            _ => Mode::Prefetch,
        };
        let mut c = cfg;
        c.machine = c.machine.with_prefetch_policy(kind);
        let detached = run_workload(&w, &c, mode);
        let (profiled, prof) = run_workload_profiled(&w, &c, mode);
        let what = format!("EMBAR/{}", kind.name());
        assert_sim_identical(&detached, &profiled, &what);
        check_profile(&prof, w.prog.name.as_str(), &what);
    }
}

/// Seeded fault plans (transient I/O errors, stragglers, brownouts,
/// stale residency bits) do not open a gap either: the profiled
/// faulted run equals the detached faulted run bit for bit.
#[test]
fn profiled_runs_are_sim_identical_under_fault_plans() {
    let mut g = SimRng::new(0x9F_0001);
    let cfg = platform();
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    for case in 0..3 {
        // Plain striping: a sampled whole-disk death would be
        // (correctly) fatal here, so survivable plans strip them.
        let plan = FaultPlan::sample(&mut g).without_disk_deaths();
        let detached = run_workload_faulted(&w, &cfg, Mode::Prefetch, &plan);
        let (profiled, prof) = run_workload_profiled_faulted(&w, &cfg, Mode::Prefetch, &plan);
        let what = format!("EMBAR/P/case {case} plan {plan:?}");
        assert_sim_identical(&detached, &profiled, &what);
        check_profile(&prof, w.prog.name.as_str(), &what);
    }
}

/// Build a random site tree the way the live collector would: root
/// `all` whose total is the sum of its children, sibling names unique
/// (the collector keys children by name), small shared alphabet so
/// merges collide on real paths.
fn random_profile(g: &mut SimRng) -> Profile {
    const NAMES: [&str; 6] = [
        "EMBAR",
        "for#0",
        "stmt:store",
        "op:load",
        "op:addr",
        "op:hint",
    ];
    fn children(g: &mut SimRng, depth: u64) -> Vec<ProfNode> {
        if depth == 0 {
            return Vec::new();
        }
        let mut picks: Vec<&str> = NAMES.to_vec();
        let n = g.next_below(4) as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            let i = g.next_below(picks.len() as u64) as usize;
            let name = picks.swap_remove(i);
            let kids = children(g, depth - 1);
            let kid_total: u64 = kids.iter().map(|c| c.total_ns).sum();
            out.push(ProfNode {
                name: name.to_string(),
                total_ns: kid_total + g.next_below(10_000),
                count: 1 + g.next_below(9),
                children: kids,
            });
        }
        out
    }
    let kids = children(g, 3);
    let total: u64 = kids.iter().map(|c| c.total_ns).sum();
    Profile {
        root: ProfNode {
            name: "all".to_string(),
            total_ns: total,
            count: 1,
            children: kids,
        },
    }
}

/// Total self time across the whole tree — the quantity a merge must
/// conserve exactly (it adds leaf-by-leaf, never rebalances).
fn self_sum(p: &Profile) -> u64 {
    p.rows().iter().map(|r| r.self_ns).sum()
}

/// The capture-merge algebra, mirroring `proptest_obs`'s registry
/// algebra: commutative and associative up to child insertion order —
/// witnessed by the canonical (sorted) collapsed form — with totals
/// and self times conserved additively.
#[test]
fn profile_merge_algebra() {
    let mut g = SimRng::new(0x9F_0002);
    for case in 0..32 {
        let a = random_profile(&mut g);
        let b = random_profile(&mut g);
        let c = random_profile(&mut g);

        // Commutativity: a+b == b+a (canonical form).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.collapsed_canonical(),
            ba.collapsed_canonical(),
            "case {case}: merge is not commutative"
        );

        // Associativity: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(
            ab_c.collapsed_canonical(),
            a_bc.collapsed_canonical(),
            "case {case}: merge is not associative"
        );

        // Conservation: totals and self times add, nothing leaks.
        assert_eq!(
            ab.total_ns(),
            a.total_ns() + b.total_ns(),
            "case {case}: merged total is not the sum"
        );
        assert_eq!(
            self_sum(&ab),
            self_sum(&a) + self_sum(&b),
            "case {case}: merged self time is not the sum"
        );

        // Identity: merging an empty `all` capture changes nothing.
        let empty = Profile {
            root: ProfNode {
                name: "all".to_string(),
                total_ns: 0,
                count: 0,
                children: Vec::new(),
            },
        };
        let mut a_e = a.clone();
        a_e.merge(&empty);
        assert_eq!(
            a_e.collapsed_canonical(),
            a.collapsed_canonical(),
            "case {case}: empty capture is not the identity"
        );
    }
}
