//! The paper's headline claims, encoded as regression tests.
//!
//! Each test states one sentence from the paper's abstract or evaluation
//! and asserts the corresponding *shape* on a scaled-down platform
//! (2 MB of memory, data ≈2x memory). Absolute numbers are not asserted —
//! they are simulator-dependent — but orderings, factors, and categories
//! are.

use oocp_bench::{run_workload, Config, Mode};
use oocp_nas::{build, App};

fn small_cfg() -> Config {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(2 * 1024 * 1024);
    cfg
}

/// "Our experimental results demonstrate that our fully-automatic scheme
/// effectively hides the I/O latency in out-of-core versions of the
/// entire NAS Parallel benchmark suite" — every app must see most of its
/// stall removed or at least a meaningful win, and none may regress
/// (the paper's worst case was +9%).
#[test]
fn no_application_regresses_and_most_speed_up() {
    let cfg = small_cfg();
    let mut wins = 0;
    for app in App::ALL {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let o = run_workload(&w, &cfg, Mode::Original);
        let p = run_workload(&w, &cfg, Mode::Prefetch);
        o.verified
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: O: {e}", app.name()));
        p.verified
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: P: {e}", app.name()));
        let speedup = o.total() as f64 / p.total() as f64;
        // APPBT breaks even at best until the two-version fix (the
        // paper's worst case was +9%; ours sits at ~1.0x at the headline
        // scale and can dip slightly at this reduced one).
        assert!(
            speedup > 0.85,
            "{} regressed badly: {speedup:.2}x",
            app.name()
        );
        if speedup >= 1.5 {
            wins += 1;
        }
    }
    assert!(wins >= 5, "only {wins} applications sped up >=1.5x");
}

/// "more than half of the I/O stall time has been eliminated in seven of
/// the eight applications".
#[test]
fn stall_time_is_mostly_eliminated() {
    let cfg = small_cfg();
    let mut eliminated = 0;
    for app in App::ALL {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let o = run_workload(&w, &cfg, Mode::Original);
        let p = run_workload(&w, &cfg, Mode::Prefetch);
        if (p.time.idle as f64) < 0.5 * o.time.idle as f64 {
            eliminated += 1;
        }
    }
    assert!(
        eliminated >= 7,
        "stall halved in only {eliminated} of 8 applications"
    );
}

/// "For all cases except APPBT, the coverage factor is greater than 75%."
/// (Our APPSP is also below the paper's coverage; see EXPERIMENTS.md.)
#[test]
fn coverage_is_high_except_the_symbolic_bound_apps() {
    let cfg = small_cfg();
    for app in App::ALL {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let p = run_workload(&w, &cfg, Mode::Prefetch);
        let floor = match app {
            App::Appbt | App::Appsp => 0.40,
            // MGRID's plane-boundary effects cost more at this reduced
            // scale (64% here vs ~88% at the headline scale; see
            // EXPERIMENTS.md).
            App::Mgrid => 0.60,
            _ => 0.75,
        };
        assert!(
            p.os.coverage() >= floor,
            "{}: coverage {:.1}% below {floor}",
            app.name(),
            p.os.coverage() * 100.0
        );
    }
}

/// "half of the applications (BUK, CGM, FFT and APPSP) run slower than
/// the original non-prefetching versions when the run-time layer is
/// removed. ... Hence the run-time layer is clearly essential."
#[test]
fn removing_the_runtime_layer_is_catastrophic_for_the_same_four_apps() {
    let cfg = small_cfg();
    for app in [App::Buk, App::Cgm, App::Fft, App::Appsp] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let o = run_workload(&w, &cfg, Mode::Original);
        let pn = run_workload(&w, &cfg, Mode::PrefetchNoFilter);
        assert!(
            pn.total() > o.total(),
            "{}: expected slowdown without the filter",
            app.name()
        );
    }
}

/// "over 96% of the prefetches were unnecessary for all but EMBAR (where
/// the access patterns are simple enough that the compiler's analysis is
/// perfect)".
#[test]
fn embar_is_the_only_app_with_near_perfect_analysis() {
    let cfg = small_cfg();
    let w = build(App::Embar, cfg.bytes_for_ratio(2.0));
    let p = run_workload(&w, &cfg, Mode::Prefetch);
    assert!(
        p.rt.filtered_fraction() < 0.05,
        "EMBAR filtered fraction {:.1}% should be tiny",
        p.rt.filtered_fraction() * 100.0
    );
    for app in [App::Buk, App::Cgm, App::Fft] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let p = run_workload(&w, &cfg, Mode::Prefetch);
        assert!(
            p.rt.filtered_fraction() > 0.90,
            "{}: filtered fraction {:.1}% should be large",
            app.name(),
            p.rt.filtered_fraction() * 100.0
        );
    }
}

/// "almost all of the prefetches issued to the system by the run-time
/// layer are useful" (Figure 4(b) left column).
#[test]
fn prefetches_reaching_the_os_are_useful() {
    let cfg = small_cfg();
    for app in App::ALL {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let p = run_workload(&w, &cfg, Mode::Prefetch);
        assert!(
            p.os.unnecessary_issued_fraction() < 0.25,
            "{}: {:.1}% of issued pages unnecessary",
            app.name(),
            p.os.unnecessary_issued_fraction() * 100.0
        );
    }
}

/// "In almost all cases, the total disk requests do not increase as a
/// result of prefetching".
#[test]
fn disk_requests_do_not_explode() {
    let cfg = small_cfg();
    for app in App::ALL {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        let o = run_workload(&w, &cfg, Mode::Original);
        let p = run_workload(&w, &cfg, Mode::Prefetch);
        assert!(
            p.disk.requests() as f64 <= 1.25 * o.disk.requests() as f64,
            "{}: requests grew {} -> {}",
            app.name(),
            o.disk.requests(),
            p.disk.requests()
        );
    }
}

/// Figure 8: "the original version of BUK suffers a large discontinuity
/// in execution time once the problem no longer fits in memory. In
/// contrast, the prefetching version suffers no such discontinuity."
#[test]
fn buk_cliff_exists_for_paging_not_for_prefetching() {
    let cfg = small_cfg();
    let mem = cfg.machine.memory_bytes();
    let t = |pctg: u64, mode: Mode| {
        let keys = (mem * pctg / 100 / 18) as i64;
        let w = oocp_nas::buk::build_sized(keys, (keys / 4).max(512), 2);
        run_workload(&w, &cfg, mode).total() as f64
    };
    // Per-key time below vs above the boundary.
    let o_below = t(75, Mode::Original) / 75.0;
    let o_above = t(150, Mode::Original) / 150.0;
    let p_below = t(75, Mode::Prefetch) / 75.0;
    let p_above = t(150, Mode::Prefetch) / 150.0;
    assert!(
        o_above > 1.6 * o_below,
        "paging cliff missing: {o_below:.3} -> {o_above:.3} per-size"
    );
    assert!(
        p_above < 1.3 * p_below,
        "prefetching should stay near-linear: {p_below:.3} -> {p_above:.3}"
    );
}

/// Section 4.1.1 / ablation: the paper's proposed two-version fix must
/// repair APPBT's coverage.
#[test]
fn two_version_loops_fix_appbt() {
    let cfg = small_cfg();
    let w = build(App::Appbt, cfg.bytes_for_ratio(2.0));
    let p = run_workload(&w, &cfg, Mode::Prefetch);
    let p2 = run_workload(&w, &cfg, Mode::PrefetchTwoVersion);
    p2.verified.as_ref().expect("two-version result verifies");
    assert!(
        p2.os.coverage() > p.os.coverage() + 0.2,
        "coverage {:.2} -> {:.2} not a fix",
        p.os.coverage(),
        p2.os.coverage()
    );
    assert!(p2.total() < p.total(), "the fix must also be faster");
}

/// Table 3: releases keep memory free for the release-heavy apps.
#[test]
fn releases_keep_memory_free() {
    let cfg = small_cfg();
    let frames = cfg.machine.resident_limit as f64;
    let free_frac = |app| {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        run_workload(&w, &cfg, Mode::Prefetch).avg_free_frames / frames
    };
    let embar = free_frac(App::Embar);
    let appbt = free_frac(App::Appbt);
    assert!(
        embar > 0.6,
        "EMBAR should keep most memory free: {embar:.2}"
    );
    assert!(
        appbt < 0.4,
        "APPBT (no releases) should hold memory: {appbt:.2}"
    );
}

/// Memory-adaptive code generation (section 4.3.1) must not change
/// results and must reduce hint traffic on in-core re-traversals.
#[test]
fn adaptive_codegen_verifies_and_reduces_hints() {
    let mut cfg = small_cfg();
    cfg.warm = true;
    let w = build(App::Cgm, cfg.bytes_for_ratio(0.25));
    let p = run_workload(&w, &cfg, Mode::Prefetch);
    let c = run_workload(&w, &cfg, Mode::PrefetchAdaptiveCode);
    c.verified.as_ref().expect("adaptive-code result verifies");
    assert!(
        c.rt.prefetch_ops < p.rt.prefetch_ops,
        "adaptive code should execute fewer hints: {} vs {}",
        c.rt.prefetch_ops,
        p.rt.prefetch_ops
    );
    assert!(c.total() <= p.total());
}
