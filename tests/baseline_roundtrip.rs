//! Round-trip property of the performance-baseline format.
//!
//! The `perfgate` trajectory gate only works if capture → serialize →
//! parse → compare is lossless: a baseline compared against the very
//! run that produced it must report **zero** drift, or every CI run
//! would trip over serialization noise rather than real regressions.
//! This suite pins that down for fault-free runs and — because the
//! format must also be able to baseline chaos experiments — for runs
//! under random fault plans drawn from the same shared generator the
//! fault property tests use ([`FaultPlan::sample`]).

use oocp::obs::baseline::{baseline_json, compare, metrics, parse_baseline, Baseline};
use oocp::os::FaultPlan;
use oocp::sim::SimRng;
use oocp_bench::{report, run_workload, run_workload_faulted, Config, Mode};
use oocp_nas::{build, App};

fn small_config() -> Config {
    let mut cfg = Config::default_platform();
    cfg.machine = cfg.machine.with_memory_bytes(1024 * 1024);
    cfg.metrics = true;
    cfg
}

/// Capture a small matrix, push it through the full JSON round trip,
/// and self-compare: the report must be exactly clean.
#[test]
fn baseline_roundtrip_self_compares_clean() {
    let cfg = small_config();
    let mut runs = Vec::new();
    for app in [App::Embar, App::Buk] {
        let w = build(app, cfg.bytes_for_ratio(2.0));
        for (label, mode) in [("orig", Mode::Original), ("pf", Mode::Prefetch)] {
            let r = run_workload(&w, &cfg, mode);
            r.verified.as_ref().expect("run verifies");
            runs.push(report::baseline_run(app.name(), label, &r));
        }
    }
    let b = Baseline {
        index: 7,
        seed: cfg.seed,
        whylate: None,
        runs,
    };

    let text = baseline_json(&b).to_string();
    let parsed =
        parse_baseline(&oocp::obs::json::parse(&text).expect("serialized baseline parses"))
            .expect("parsed baseline validates");
    assert_eq!(parsed.index, b.index);
    assert_eq!(parsed.seed, b.seed);
    assert_eq!(parsed.runs.len(), b.runs.len());

    // Every metric of every run survived the round trip exactly.
    for (orig, back) in b.runs.iter().zip(&parsed.runs) {
        assert_eq!(orig.key(), back.key());
        assert_eq!(orig.checksum, back.checksum, "{}", orig.key());
        for ((name, a, _), (_, bv, _)) in metrics(orig).iter().zip(metrics(back).iter()) {
            assert_eq!(a, bv, "{}: metric {name} changed in round trip", orig.key());
        }
    }

    // Self-compare: zero findings, zero gate failures, all cells seen.
    let rep = compare(&parsed, &b.runs, &[]);
    assert!(
        rep.findings.is_empty(),
        "drift against self: {:?}",
        rep.findings
    );
    assert!(rep.checksum_divergence.is_empty());
    assert!(rep.missing.is_empty() && rep.extra.is_empty());
    assert_eq!(rep.runs_compared, b.runs.len());
    assert!(rep.passed());
}

/// The same round-trip contract holds for baselines captured under
/// fault injection — the ledger's error outcomes and the fatter
/// latency tails must serialize just as exactly. Also pins determinism
/// end to end: re-running the same plan reproduces the baseline.
#[test]
fn faulted_baseline_roundtrips_and_reproduces() {
    let cfg = small_config();
    let mut g = SimRng::new(0xBA5E_0001);
    let w = build(App::Buk, cfg.bytes_for_ratio(2.0));
    for case in 0..3 {
        // Plain striping: a sampled whole-disk death would be
        // (correctly) fatal here, so survivable plans strip them.
        let plan = FaultPlan::sample(&mut g).without_disk_deaths();
        let capture = |()| {
            let r = run_workload_faulted(&w, &cfg, Mode::Prefetch, &plan);
            r.verified
                .as_ref()
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
            report::baseline_run("BUK", "pf+faults", &r)
        };
        let b = Baseline {
            index: 1,
            seed: cfg.seed,
            whylate: None,
            runs: vec![capture(())],
        };

        let text = baseline_json(&b).to_string();
        let parsed =
            parse_baseline(&oocp::obs::json::parse(&text).expect("faulted baseline parses"))
                .expect("faulted baseline validates");

        // Self-compare across the serialization boundary: clean.
        let rep = compare(&parsed, &b.runs, &[]);
        assert!(
            rep.passed() && rep.findings.is_empty(),
            "case {case}: faulted round trip drifted: {:?}",
            rep.findings
        );

        // Determinism: a fresh run of the same plan matches the stored
        // baseline metric-for-metric — the property perfgate relies on.
        let rerun = vec![capture(())];
        let rep2 = compare(&parsed, &rerun, &[]);
        assert!(
            rep2.passed() && rep2.findings.is_empty(),
            "case {case}: same-plan re-run drifted from its own baseline: {:?}",
            rep2.findings
        );
    }
}
